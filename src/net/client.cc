#include "net/client.h"

#include <cstring>
#include <errno.h>

#include "net/protocol.h"

namespace osd {
namespace net {

bool OsdClient::Connect(const std::string& host, int port,
                        const std::string& tenant, std::string* error) {
  if (!ConnectTcp(host, port, &sock_, error)) return false;
  decoder_ = FrameDecoder(kMaxFrameBytes);
  if (!Send(BuildHelloMessage(tenant), error)) {
    sock_.Close();
    return false;
  }
  JsonValue reply;
  if (!Read(&reply, error)) {
    sock_.Close();
    return false;
  }
  const std::string type = MessageType(reply);
  if (type != "hello_ok") {
    if (error != nullptr) {
      const JsonValue* message = reply.Find("message");
      *error = "handshake refused (" + type + ")";
      if (message != nullptr && message->type() == JsonValue::Type::kString) {
        *error += ": " + message->AsString();
      }
    }
    sock_.Close();
    return false;
  }
  hello_ok_ = std::move(reply);
  return true;
}

bool OsdClient::Send(const std::string& payload, std::string* error) {
  if (!sock_.valid()) {
    if (error != nullptr) *error = "not connected";
    return false;
  }
  const std::string frame = EncodeFrame(payload, kMaxFrameBytes);
  if (frame.empty()) {
    if (error != nullptr) *error = "payload exceeds the frame cap";
    return false;
  }
  return SendAll(sock_.fd(), frame.data(), frame.size(), error);
}

bool OsdClient::Read(JsonValue* msg, std::string* error, std::string* raw) {
  if (!sock_.valid()) {
    if (error != nullptr) *error = "not connected";
    return false;
  }
  std::string payload;
  while (!decoder_.Next(&payload)) {
    if (decoder_.failed()) {
      if (error != nullptr) *error = decoder_.error();
      return false;
    }
    char buf[64 * 1024];
    const ssize_t n = RecvSome(sock_.fd(), buf, sizeof(buf));
    if (n == 0) {
      if (error != nullptr) *error = "connection closed by server";
      return false;
    }
    if (n < 0) {
      if (error != nullptr) {
        *error = std::string("recv: ") + std::strerror(errno);
      }
      return false;
    }
    if (!decoder_.Feed(buf, static_cast<size_t>(n))) {
      if (error != nullptr) *error = decoder_.error();
      return false;
    }
  }
  if (raw != nullptr) *raw = payload;
  return ParseJson(payload, msg, error);
}

}  // namespace net
}  // namespace osd
