// Versioned JSON message schema of the OSD wire protocol.
//
// One frame (net/wire.h) carries one JSON object with a "type" field.
// Clients drive the conversation; the server answers every request with at
// least one frame and never sends anything unsolicited except the
// progressive "candidate" events of a streaming submit.
//
// Client -> server:
//   {"type":"hello","version":1,"tenant":"mobile"}       (first message)
//   {"type":"submit","id":7,"query":{...},"op":"psd","k":1,
//    "metric":"l2","filters":"all","deadline_ms":250,
//    "accept_degraded":true,"retries":1,"mem_budget_bytes":67108864,
//    "stream":true,"trace":false}
//   {"type":"cancel","id":7}
//   {"type":"mutate","id":9,"ops":[
//     {"action":"insert","object_id":1000,"instances":[[x_1..x_d, w],...]},
//     {"action":"update","object_id":1000,"instances":[...]},
//     {"action":"delete","object_id":17}]}
//   {"type":"status"}        {"type":"metrics"}
//   {"type":"drain"}         {"type":"bye"}
//
// The "query" member is either {"object_id":N} (a dataset object, which
// is then excluded from its own search) or
// {"instances":[[x_1..x_d, w], ...]} with positive finite weights that are
// normalized to probabilities — clients never touch C++ types.
//
// Server -> client:
//   {"type":"hello_ok","version":1,"server":...,"dataset":{...},...}
//   {"type":"candidate","id":7,"seq":0,"attempt":1,"object_id":42,
//    "elapsed_ms":0.173}                      (streaming submits only)
//   {"type":"candidates_coalesced","id":7,"attempt":1,"count":900,
//    "truncated":false,"object_ids":[...]}    (slow readers only: candidate
//     events folded into one frame while the connection's output buffer is
//     above its high watermark; the terminal frame stays authoritative)
//   {"type":"result","id":7,"status":"OK","termination":"complete",
//    "epoch":3,...}          ("epoch" = the snapshot the query ran against)
//   {"type":"cancel_ok","id":7,"found":true}
//   {"type":"mutate_ok","id":9,"epoch":4,"applied":3}
//   {"type":"status_ok",...} {"type":"metrics_ok","text":"..."}
//   {"type":"drain_ok","inflight":N}
//   {"type":"error","id":7,"code":"bad_request","message":"..."}
//
// Every submit is answered by exactly one terminal frame ("result" or
// "error"), preceded by zero or more "candidate" events; the terminal
// frame's "candidates" array is the authoritative (post-cleanup) answer
// and is bit-identical to an embedded NncSearch::Run with the same spec.
//
// Request parsing is hardened like the binary dataset loader: strict
// types, unknown keys rejected, instance counts bounded by caps before the
// query object is built, NaN/Inf impossible by construction (the JSON
// layer refuses non-finite numbers) and re-checked here anyway.

#ifndef OSD_NET_PROTOCOL_H_
#define OSD_NET_PROTOCOL_H_

#include <string>
#include <vector>

#include "engine/query_engine.h"
#include "net/json.h"
#include "object/uncertain_object.h"

namespace osd {
namespace net {

inline constexpr int kProtocolVersion = 1;

/// Schema caps enforced before any query object is constructed.
inline constexpr int kMaxQueryInstances = 4096;
inline constexpr int kMaxQueryDim = 32;
inline constexpr int kMaxRetries = 10;
inline constexpr long kMaxRequestId = (1L << 53);  // exact in a double
/// Wire object ids land in `int` fields (Mutation::id,
/// UncertainObject::id()); a looser bound would let a wider wire value
/// truncate into a different object's id with no error.
inline constexpr long kMaxObjectId = 2147483647;  // INT_MAX, exact in a double
inline constexpr int kMaxK = 1'000'000;
inline constexpr size_t kMaxTenantName = 64;
/// Maximum ops in one mutate batch (per-request; tenants may be capped
/// lower via TenantPolicy::max_mutation_ops).
inline constexpr int kMaxMutationOps = 256;

/// Machine-readable error codes carried by "error" frames.
inline constexpr const char* kErrBadRequest = "bad_request";
inline constexpr const char* kErrOverInflightLimit = "over_inflight_limit";
inline constexpr const char* kErrRejected = "rejected";
inline constexpr const char* kErrDraining = "draining";
inline constexpr const char* kErrProtocol = "protocol_error";
/// Eviction codes: the final frame a connection receives (best-effort — a
/// non-reading peer may never see it) before the server closes it.
inline constexpr const char* kErrSlowConsumer = "slow_consumer";
inline constexpr const char* kErrTimeout = "timeout";
/// The tenant's policy forbids writes (TenantPolicy::allow_writes).
inline constexpr const char* kErrWriteDenied = "write_denied";
/// A syntactically valid mutate batch the store refused (unknown id,
/// duplicate insert, dimension mismatch, budget refusal). The batch was
/// applied all-or-nothing: nothing changed.
inline constexpr const char* kErrBadMutation = "bad_mutation";
/// The durability tier is in read-only degraded mode (WAL append/fsync
/// failure, disk full): reads keep serving, this write changed nothing and
/// is not durable. Operators: see the README runbook.
inline constexpr const char* kErrStorageUnavailable = "storage_unavailable";

/// True iff `tenant` is a valid tenant identifier: [A-Za-z0-9_-]{1,64}.
/// Tenant names become Prometheus label values, so the charset is locked
/// down here once instead of escaped everywhere.
bool ValidTenantName(const std::string& tenant);

struct HelloRequest {
  int version = 0;
  std::string tenant = "default";
};

/// Parsed submit, decoupled from the dataset: the query is either inline
/// (`query` holds a constructed object) or a store reference
/// (`object_id` >= 0) — an *external* object id, the fold-stable name the
/// mutate path uses, prechecked by the server and resolved by the engine
/// against the snapshot pinned for the query.
struct SubmitRequest {
  long id = -1;
  bool inline_query = false;
  UncertainObject query;  // valid iff inline_query
  int object_id = -1;     // external id; valid iff !inline_query
  NncOptions options;     // op/k/metric/filters/degraded; control unset
  double deadline_seconds = 0.0;
  int retries = 0;
  long mem_budget_bytes = 0;  // 0 = server default / tenant policy
  bool stream = true;
  bool trace = false;
};

struct CancelRequest {
  long id = -1;
};

/// Parsed mutate batch: ops are fully constructed (payloads validated
/// through UncertainObject::TryFromWeighted — wire input can never trip a
/// constructor OSD_CHECK) and addressed by external object id. The server
/// hands them to VersionedDataset::Apply unchanged.
struct MutateRequest {
  long id = -1;
  std::vector<Mutation> ops;
};

/// Message parsers: strict schema validation over an already-parsed JSON
/// value. On failure they return false with a precise *error and leave the
/// output unspecified.
bool ParseHello(const JsonValue& msg, HelloRequest* out, std::string* error);
bool ParseSubmit(const JsonValue& msg, SubmitRequest* out,
                 std::string* error);
bool ParseCancel(const JsonValue& msg, CancelRequest* out,
                 std::string* error);
bool ParseMutate(const JsonValue& msg, MutateRequest* out,
                 std::string* error);

/// The "type" member of a parsed message ("" when absent or not a string).
std::string MessageType(const JsonValue& msg);

// --- client-side builders -------------------------------------------------

std::string BuildHelloMessage(const std::string& tenant);

/// Declarative submit parameters, mirroring the schema one-to-one.
struct SubmitParams {
  long id = 1;
  const UncertainObject* query = nullptr;  ///< inline query; else object_id
  int object_id = -1;
  std::string op = "psd";
  int k = 1;
  std::string metric = "l2";
  std::string filters = "all";
  double deadline_ms = 0.0;  ///< <= 0 omits the field
  bool accept_degraded = false;
  int retries = 0;
  long mem_budget_bytes = 0;
  bool stream = true;
  bool trace = false;
};

std::string BuildSubmitMessage(const SubmitParams& params);
std::string BuildCancelMessage(long id);

/// Declarative client-side mutate op, mirroring the schema one-to-one.
struct MutateOp {
  std::string action;  ///< "insert" | "update" | "delete"
  int object_id = -1;
  /// Rows of [x_1..x_d, w]; ignored for "delete".
  std::vector<std::vector<double>> instances;
};

std::string BuildMutateMessage(long id, const std::vector<MutateOp>& ops);

// --- server-side builders -------------------------------------------------

std::string BuildHelloOkMessage(int dataset_objects, int dataset_dim,
                                uint64_t epoch, const std::string& tenant);
std::string BuildCandidateMessage(long id, long seq, int attempt,
                                  int object_id, double elapsed_seconds);
/// One frame standing in for `count` individual candidate events of query
/// `id` that were coalesced while the connection's output buffer was above
/// its high watermark. `object_ids` may be truncated (the terminal result
/// frame carries the authoritative candidate set either way).
std::string BuildCoalescedMessage(long id, int attempt, long count,
                                  const std::vector<int>& object_ids,
                                  bool truncated);
/// The terminal frame for a completed ticket: status, termination reason,
/// the authoritative candidate set, work stats, and the error text / trace
/// when present.
std::string BuildResultMessage(long id, const QueryTicket& ticket);
std::string BuildCancelOkMessage(long id, bool found);
/// `seq` is the batch's durable WAL sequence number; 0 when the server
/// runs without a durability tier (the field is emitted either way so
/// clients need no presence check).
std::string BuildMutateOkMessage(long id, uint64_t epoch, int applied,
                                 uint64_t seq);
std::string BuildDrainOkMessage(long inflight);
std::string BuildMetricsOkMessage(const std::string& text);
std::string BuildErrorMessage(long id, const char* code,
                              const std::string& message);

/// Wire name of an NncTermination ("complete", "deadline", "cancelled",
/// "memory").
const char* TerminationName(NncTermination termination);

}  // namespace net
}  // namespace osd

#endif  // OSD_NET_PROTOCOL_H_
