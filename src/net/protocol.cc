#include "net/protocol.h"

#include <cmath>
#include <cstdio>
#include <utility>
#include <vector>

namespace osd {
namespace net {

namespace {

bool Fail(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
  return false;
}

/// A JSON number that is an exact integer within [min, max].
bool AsInteger(const JsonValue& v, long min, long max, long* out) {
  if (!v.is_number()) return false;
  const double d = v.AsNumber();
  if (!(d >= static_cast<double>(min)) || !(d <= static_cast<double>(max))) {
    return false;
  }
  if (d != std::floor(d)) return false;
  *out = static_cast<long>(d);
  return true;
}

bool ParseOperatorName(const std::string& s, Operator* op) {
  if (s == "ssd") *op = Operator::kSSd;
  else if (s == "sssd") *op = Operator::kSsSd;
  else if (s == "psd") *op = Operator::kPSd;
  else if (s == "fsd") *op = Operator::kFSd;
  else if (s == "f+sd") *op = Operator::kFPlusSd;
  else return false;
  return true;
}

bool ParseFilterName(const std::string& s, FilterConfig* config) {
  if (s == "all") *config = FilterConfig::All();
  else if (s == "bf") *config = FilterConfig::BruteForce();
  else if (s == "l") *config = FilterConfig::L();
  else if (s == "lp") *config = FilterConfig::LP();
  else if (s == "lg") *config = FilterConfig::LG();
  else if (s == "lgp") *config = FilterConfig::LGP();
  else return false;
  return true;
}

/// Rejects unknown keys: a typo'd field must fail loudly, not silently
/// run with defaults (same stance as the failpoint spec parser).
bool CheckKnownKeys(const JsonValue& msg,
                    std::initializer_list<const char*> known,
                    std::string* error) {
  for (const auto& [key, value] : msg.Members()) {
    (void)value;
    bool found = false;
    for (const char* k : known) {
      if (key == k) {
        found = true;
        break;
      }
    }
    if (!found) return Fail(error, "unknown field '" + key + "'");
  }
  return true;
}

/// Builds an object from an "instances" array [[x_1..x_d, w], ...] with
/// every bound checked before the flat arrays are filled. `what` prefixes
/// error messages ("query.instances", "ops[3].instances"); `id` becomes
/// the object's id. Construction goes through TryFromWeighted so wire
/// input can never trip a constructor OSD_CHECK — notably a row length
/// within the schema cap but past Point::kMaxDim, which used to abort the
/// process in the UncertainObject constructor.
bool ParseInstanceRows(const JsonValue& instances, const std::string& what,
                       int id, UncertainObject* out, std::string* error) {
  if (!instances.is_array()) {
    return Fail(error, what + " must be an array");
  }
  const auto& rows = instances.Items();
  if (rows.empty()) return Fail(error, what + " is empty");
  if (rows.size() > static_cast<size_t>(kMaxQueryInstances)) {
    return Fail(error, what + " exceeds the cap of " +
                           std::to_string(kMaxQueryInstances));
  }
  if (!rows[0].is_array()) {
    return Fail(error, what + " rows must be arrays");
  }
  const size_t row_len = rows[0].Items().size();
  if (row_len < 2) {
    return Fail(error, what + " rows need >= 1 coordinate + weight");
  }
  const int dim = static_cast<int>(row_len) - 1;
  if (dim > kMaxQueryDim) {
    return Fail(error, what + " dimensionality exceeds the cap of " +
                           std::to_string(kMaxQueryDim));
  }
  std::vector<double> coords;
  std::vector<double> weights;
  coords.reserve(rows.size() * static_cast<size_t>(dim));
  weights.reserve(rows.size());
  for (size_t r = 0; r < rows.size(); ++r) {
    if (!rows[r].is_array() || rows[r].Items().size() != row_len) {
      return Fail(error, what + " row " + std::to_string(r) +
                             " has inconsistent length");
    }
    const auto& cells = rows[r].Items();
    for (size_t c = 0; c < row_len; ++c) {
      if (!cells[c].is_number()) {
        return Fail(error, what + " row " + std::to_string(r) +
                               " holds a non-number");
      }
    }
    for (int d = 0; d < dim; ++d) {
      const double x = cells[static_cast<size_t>(d)].AsNumber();
      // The JSON layer already refuses NaN/Inf; keep the explicit check so
      // this function is safe against any other JsonValue producer.
      if (!std::isfinite(x)) {
        return Fail(error, "non-finite coordinate in " + what);
      }
      coords.push_back(x);
    }
    const double w = cells[row_len - 1].AsNumber();
    if (!std::isfinite(w) || w <= 0.0) {
      return Fail(error, what + " weights must be finite and > 0");
    }
    weights.push_back(w);
  }
  std::string verr;
  if (!UncertainObject::TryFromWeighted(id, dim, std::move(coords),
                                        std::move(weights), out, &verr)) {
    return Fail(error, what + ": " + verr);
  }
  return true;
}

bool ParseInlineQuery(const JsonValue& instances, UncertainObject* out,
                      std::string* error) {
  return ParseInstanceRows(instances, "query.instances", /*id=*/-1, out,
                           error);
}

}  // namespace

bool ValidTenantName(const std::string& tenant) {
  if (tenant.empty() || tenant.size() > kMaxTenantName) return false;
  for (const char c : tenant) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '-';
    if (!ok) return false;
  }
  return true;
}

std::string MessageType(const JsonValue& msg) {
  const JsonValue* type = msg.Find("type");
  if (type == nullptr || !type->is_string()) return "";
  return type->AsString();
}

bool ParseHello(const JsonValue& msg, HelloRequest* out, std::string* error) {
  if (!msg.is_object()) return Fail(error, "hello must be an object");
  if (!CheckKnownKeys(msg, {"type", "version", "tenant"}, error)) {
    return false;
  }
  const JsonValue* version = msg.Find("version");
  long v = 0;
  if (version == nullptr || !AsInteger(*version, 1, 1'000'000, &v)) {
    return Fail(error, "hello.version must be a positive integer");
  }
  out->version = static_cast<int>(v);
  out->tenant = "default";
  if (const JsonValue* tenant = msg.Find("tenant"); tenant != nullptr) {
    if (!tenant->is_string() || !ValidTenantName(tenant->AsString())) {
      return Fail(error,
                  "hello.tenant must match [A-Za-z0-9_-]{1,64}");
    }
    out->tenant = tenant->AsString();
  }
  return true;
}

bool ParseSubmit(const JsonValue& msg, SubmitRequest* out,
                 std::string* error) {
  if (!msg.is_object()) return Fail(error, "submit must be an object");
  if (!CheckKnownKeys(msg,
                      {"type", "id", "query", "op", "k", "metric", "filters",
                       "deadline_ms", "accept_degraded", "retries",
                       "mem_budget_bytes", "stream", "trace"},
                      error)) {
    return false;
  }
  const JsonValue* id = msg.Find("id");
  if (id == nullptr || !AsInteger(*id, 0, kMaxRequestId, &out->id)) {
    return Fail(error, "submit.id must be an integer in [0, 2^53]");
  }
  const JsonValue* query = msg.Find("query");
  if (query == nullptr || !query->is_object()) {
    return Fail(error, "submit.query must be an object");
  }
  if (!CheckKnownKeys(*query, {"object_id", "instances"}, error)) {
    return false;
  }
  const JsonValue* object_id = query->Find("object_id");
  const JsonValue* instances = query->Find("instances");
  if ((object_id != nullptr) == (instances != nullptr)) {
    return Fail(error,
                "submit.query needs exactly one of object_id / instances");
  }
  out->options = NncOptions{};
  if (object_id != nullptr) {
    long oid = -1;
    // object_id is an external id stored in an int (UncertainObject::id());
    // the bound must be INT_MAX exactly or larger wire values would
    // silently truncate into a DIFFERENT object's id.
    if (!AsInteger(*object_id, 0, kMaxObjectId, &oid)) {
      return Fail(error,
                  "submit.query.object_id must be an integer in [0, 2^31)");
    }
    out->inline_query = false;
    out->object_id = static_cast<int>(oid);
    // Self-exclusion (Definition 6: a dataset object never competes with
    // itself) is resolved by the engine against the snapshot pinned for
    // the query — NncOptions::exclude_id is a per-snapshot index, which
    // only exists once that snapshot does.
  } else {
    out->inline_query = true;
    out->object_id = -1;
    if (!ParseInlineQuery(*instances, &out->query, error)) return false;
  }
  if (const JsonValue* op = msg.Find("op"); op != nullptr) {
    if (!op->is_string() ||
        !ParseOperatorName(op->AsString(), &out->options.op)) {
      return Fail(error,
                  "submit.op must be one of ssd|sssd|psd|fsd|f+sd");
    }
  }
  if (const JsonValue* k = msg.Find("k"); k != nullptr) {
    long kk = 0;
    if (!AsInteger(*k, 1, kMaxK, &kk)) {
      return Fail(error, "submit.k must be an integer in [1, " +
                             std::to_string(kMaxK) + "]");
    }
    out->options.k = static_cast<int>(kk);
  }
  if (const JsonValue* metric = msg.Find("metric"); metric != nullptr) {
    if (!metric->is_string()) return Fail(error, "submit.metric must be a string");
    const std::string& m = metric->AsString();
    if (m == "l2") out->options.metric = Metric::kL2;
    else if (m == "l1") out->options.metric = Metric::kL1;
    else return Fail(error, "submit.metric must be l2|l1");
  }
  if (const JsonValue* filters = msg.Find("filters"); filters != nullptr) {
    if (!filters->is_string() ||
        !ParseFilterName(filters->AsString(), &out->options.filters)) {
      return Fail(error,
                  "submit.filters must be one of all|bf|l|lp|lg|lgp");
    }
  }
  out->deadline_seconds = 0.0;
  if (const JsonValue* deadline = msg.Find("deadline_ms");
      deadline != nullptr) {
    if (!deadline->is_number()) {
      return Fail(error, "submit.deadline_ms must be a number");
    }
    const double ms = deadline->AsNumber();
    if (!std::isfinite(ms) || ms <= 0.0 || ms > 1e9) {
      return Fail(error, "submit.deadline_ms must be finite and in (0, 1e9]");
    }
    out->deadline_seconds = ms / 1e3;
  }
  out->options.degraded_superset = false;
  if (const JsonValue* degraded = msg.Find("accept_degraded");
      degraded != nullptr) {
    if (!degraded->is_bool()) {
      return Fail(error, "submit.accept_degraded must be a bool");
    }
    out->options.degraded_superset = degraded->AsBool();
  }
  out->retries = 0;
  if (const JsonValue* retries = msg.Find("retries"); retries != nullptr) {
    long r = 0;
    if (!AsInteger(*retries, 0, kMaxRetries, &r)) {
      return Fail(error, "submit.retries must be an integer in [0, " +
                             std::to_string(kMaxRetries) + "]");
    }
    out->retries = static_cast<int>(r);
  }
  out->mem_budget_bytes = 0;
  if (const JsonValue* mem = msg.Find("mem_budget_bytes"); mem != nullptr) {
    if (!AsInteger(*mem, 0, 1L << 50, &out->mem_budget_bytes)) {
      return Fail(error,
                  "submit.mem_budget_bytes must be an integer in [0, 2^50]");
    }
  }
  out->stream = true;
  if (const JsonValue* stream = msg.Find("stream"); stream != nullptr) {
    if (!stream->is_bool()) return Fail(error, "submit.stream must be a bool");
    out->stream = stream->AsBool();
  }
  out->trace = false;
  if (const JsonValue* trace = msg.Find("trace"); trace != nullptr) {
    if (!trace->is_bool()) return Fail(error, "submit.trace must be a bool");
    out->trace = trace->AsBool();
  }
  return true;
}

bool ParseCancel(const JsonValue& msg, CancelRequest* out,
                 std::string* error) {
  if (!msg.is_object()) return Fail(error, "cancel must be an object");
  if (!CheckKnownKeys(msg, {"type", "id"}, error)) return false;
  const JsonValue* id = msg.Find("id");
  if (id == nullptr || !AsInteger(*id, 0, kMaxRequestId, &out->id)) {
    return Fail(error, "cancel.id must be an integer in [0, 2^53]");
  }
  return true;
}

bool ParseMutate(const JsonValue& msg, MutateRequest* out,
                 std::string* error) {
  if (!msg.is_object()) return Fail(error, "mutate must be an object");
  if (!CheckKnownKeys(msg, {"type", "id", "ops"}, error)) return false;
  const JsonValue* id = msg.Find("id");
  if (id == nullptr || !AsInteger(*id, 0, kMaxRequestId, &out->id)) {
    return Fail(error, "mutate.id must be an integer in [0, 2^53]");
  }
  const JsonValue* ops = msg.Find("ops");
  if (ops == nullptr || !ops->is_array()) {
    return Fail(error, "mutate.ops must be an array");
  }
  const auto& items = ops->Items();
  if (items.empty()) return Fail(error, "mutate.ops is empty");
  if (items.size() > static_cast<size_t>(kMaxMutationOps)) {
    return Fail(error, "mutate.ops exceeds the cap of " +
                           std::to_string(kMaxMutationOps));
  }
  out->ops.clear();
  out->ops.reserve(items.size());
  for (size_t i = 0; i < items.size(); ++i) {
    const std::string where = "mutate.ops[" + std::to_string(i) + "]";
    const JsonValue& item = items[i];
    if (!item.is_object()) return Fail(error, where + " must be an object");
    if (!CheckKnownKeys(item, {"action", "object_id", "instances"}, error)) {
      return false;
    }
    const JsonValue* action = item.Find("action");
    if (action == nullptr || !action->is_string()) {
      return Fail(error, where + ".action must be a string");
    }
    Mutation op;
    const std::string& a = action->AsString();
    if (a == "insert") op.kind = Mutation::Kind::kInsert;
    else if (a == "update") op.kind = Mutation::Kind::kUpdate;
    else if (a == "delete") op.kind = Mutation::Kind::kDelete;
    else {
      return Fail(error, where + ".action must be insert|update|delete");
    }
    const JsonValue* object_id = item.Find("object_id");
    long oid = -1;
    // Same bound as submit: Mutation::id is an int, and a wider wire value
    // would wrap into (or insert as) a different object with no error.
    if (object_id == nullptr || !AsInteger(*object_id, 0, kMaxObjectId, &oid)) {
      return Fail(error,
                  where + ".object_id must be an integer in [0, 2^31)");
    }
    op.id = static_cast<int>(oid);
    const JsonValue* instances = item.Find("instances");
    if (op.kind == Mutation::Kind::kDelete) {
      if (instances != nullptr) {
        return Fail(error, where + ": delete takes no instances");
      }
    } else {
      if (instances == nullptr) {
        return Fail(error, where + ".instances is required for " + a);
      }
      auto obj = std::make_shared<UncertainObject>();
      if (!ParseInstanceRows(*instances, where + ".instances", op.id,
                             obj.get(), error)) {
        return false;
      }
      op.object = std::move(obj);
    }
    out->ops.push_back(std::move(op));
  }
  return true;
}

std::string BuildHelloMessage(const std::string& tenant) {
  std::string msg = "{\"type\":\"hello\",\"version\":" +
                    std::to_string(kProtocolVersion);
  if (!tenant.empty()) {
    msg += ",\"tenant\":";
    AppendJsonString(&msg, tenant);
  }
  msg += "}";
  return msg;
}

std::string BuildSubmitMessage(const SubmitParams& params) {
  std::string msg = "{\"type\":\"submit\",\"id\":" + std::to_string(params.id);
  msg += ",\"query\":";
  if (params.query != nullptr) {
    msg += "{\"instances\":[";
    const UncertainObject& q = *params.query;
    for (int i = 0; i < q.num_instances(); ++i) {
      if (i > 0) msg += ",";
      msg += "[";
      const Point p = q.Instance(i);
      for (int d = 0; d < q.dim(); ++d) {
        msg += JsonNumber(p[d]) + ",";
      }
      msg += JsonNumber(q.Prob(i));
      msg += "]";
    }
    msg += "]}";
  } else {
    msg += "{\"object_id\":" + std::to_string(params.object_id) + "}";
  }
  msg += ",\"op\":";
  AppendJsonString(&msg, params.op);
  msg += ",\"k\":" + std::to_string(params.k);
  msg += ",\"metric\":";
  AppendJsonString(&msg, params.metric);
  msg += ",\"filters\":";
  AppendJsonString(&msg, params.filters);
  if (params.deadline_ms > 0.0) {
    msg += ",\"deadline_ms\":" + JsonNumber(params.deadline_ms);
  }
  if (params.accept_degraded) msg += ",\"accept_degraded\":true";
  if (params.retries > 0) {
    msg += ",\"retries\":" + std::to_string(params.retries);
  }
  if (params.mem_budget_bytes > 0) {
    msg += ",\"mem_budget_bytes\":" + std::to_string(params.mem_budget_bytes);
  }
  msg += params.stream ? ",\"stream\":true" : ",\"stream\":false";
  if (params.trace) msg += ",\"trace\":true";
  msg += "}";
  return msg;
}

std::string BuildCancelMessage(long id) {
  return "{\"type\":\"cancel\",\"id\":" + std::to_string(id) + "}";
}

std::string BuildMutateMessage(long id, const std::vector<MutateOp>& ops) {
  std::string msg = "{\"type\":\"mutate\",\"id\":" + std::to_string(id) +
                    ",\"ops\":[";
  for (size_t i = 0; i < ops.size(); ++i) {
    const MutateOp& op = ops[i];
    if (i > 0) msg += ",";
    msg += "{\"action\":";
    AppendJsonString(&msg, op.action);
    msg += ",\"object_id\":" + std::to_string(op.object_id);
    if (op.action != "delete") {
      msg += ",\"instances\":[";
      for (size_t r = 0; r < op.instances.size(); ++r) {
        if (r > 0) msg += ",";
        msg += "[";
        for (size_t c = 0; c < op.instances[r].size(); ++c) {
          if (c > 0) msg += ",";
          msg += JsonNumber(op.instances[r][c]);
        }
        msg += "]";
      }
      msg += "]";
    }
    msg += "}";
  }
  msg += "]}";
  return msg;
}

std::string BuildHelloOkMessage(int dataset_objects, int dataset_dim,
                                uint64_t epoch, const std::string& tenant) {
  std::string msg = "{\"type\":\"hello_ok\",\"version\":" +
                    std::to_string(kProtocolVersion) +
                    ",\"server\":\"osd_server\",\"dataset\":{\"objects\":" +
                    std::to_string(dataset_objects) +
                    ",\"dim\":" + std::to_string(dataset_dim) +
                    ",\"epoch\":" + std::to_string(epoch) +
                    "},\"tenant\":";
  AppendJsonString(&msg, tenant);
  msg += "}";
  return msg;
}

std::string BuildCandidateMessage(long id, long seq, int attempt,
                                  int object_id, double elapsed_seconds) {
  return "{\"type\":\"candidate\",\"id\":" + std::to_string(id) +
         ",\"seq\":" + std::to_string(seq) +
         ",\"attempt\":" + std::to_string(attempt) +
         ",\"object_id\":" + std::to_string(object_id) +
         ",\"elapsed_ms\":" + JsonNumber(elapsed_seconds * 1e3) + "}";
}

std::string BuildCoalescedMessage(long id, int attempt, long count,
                                  const std::vector<int>& object_ids,
                                  bool truncated) {
  std::string msg = "{\"type\":\"candidates_coalesced\",\"id\":" +
                    std::to_string(id) +
                    ",\"attempt\":" + std::to_string(attempt) +
                    ",\"count\":" + std::to_string(count) +
                    ",\"truncated\":" + (truncated ? "true" : "false") +
                    ",\"object_ids\":[";
  for (size_t i = 0; i < object_ids.size(); ++i) {
    if (i != 0) msg += ",";
    msg += std::to_string(object_ids[i]);
  }
  msg += "]}";
  return msg;
}

const char* TerminationName(NncTermination termination) {
  switch (termination) {
    case NncTermination::kComplete: return "complete";
    case NncTermination::kDeadlineExceeded: return "deadline";
    case NncTermination::kCancelled: return "cancelled";
    case NncTermination::kMemoryExceeded: return "memory";
  }
  return "unknown";
}

std::string BuildResultMessage(long id, const QueryTicket& ticket) {
  const NncResult& result = ticket.result();
  const FilterStats& stats = result.stats;
  std::string msg = "{\"type\":\"result\",\"id\":" + std::to_string(id);
  msg += ",\"status\":\"";
  msg += QueryStatusName(ticket.status());
  msg += "\",\"termination\":\"";
  msg += TerminationName(result.termination);
  msg += "\",\"degraded\":";
  msg += result.degraded ? "true" : "false";
  msg += ",\"candidates\":[";
  for (size_t i = 0; i < result.candidates.size(); ++i) {
    if (i > 0) msg += ",";
    msg += std::to_string(result.candidates[i]);
  }
  msg += "],\"frontier_objects\":" + std::to_string(result.frontier_objects);
  msg += ",\"stats\":{\"dominance_checks\":" +
         std::to_string(stats.dominance_checks) +
         ",\"instance_comparisons\":" +
         std::to_string(stats.InstanceComparisons()) +
         ",\"flow_runs\":" + std::to_string(stats.flow_runs) +
         ",\"objects_examined\":" + std::to_string(result.objects_examined) +
         ",\"entries_pruned\":" + std::to_string(result.entries_pruned) + "}";
  msg += ",\"run_ms\":" + JsonNumber(result.seconds * 1e3);
  msg += ",\"latency_ms\":" + JsonNumber(ticket.latency_seconds() * 1e3);
  msg += ",\"attempts\":" + std::to_string(ticket.attempts());
  msg += ",\"mem_peak_bytes\":" + std::to_string(result.mem_peak_bytes);
  msg += ",\"epoch\":" + std::to_string(result.epoch);
  if (!ticket.error().empty()) {
    msg += ",\"error\":";
    AppendJsonString(&msg, ticket.error());
  }
  if (ticket.trace() != nullptr) {
    msg += ",\"trace\":" + ticket.trace()->ToJson();
  }
  msg += "}";
  return msg;
}

std::string BuildCancelOkMessage(long id, bool found) {
  return "{\"type\":\"cancel_ok\",\"id\":" + std::to_string(id) +
         ",\"found\":" + (found ? "true" : "false") + "}";
}

std::string BuildMutateOkMessage(long id, uint64_t epoch, int applied,
                                 uint64_t seq) {
  return "{\"type\":\"mutate_ok\",\"id\":" + std::to_string(id) +
         ",\"epoch\":" + std::to_string(epoch) +
         ",\"applied\":" + std::to_string(applied) +
         ",\"seq\":" + std::to_string(seq) + "}";
}

std::string BuildDrainOkMessage(long inflight) {
  return "{\"type\":\"drain_ok\",\"inflight\":" + std::to_string(inflight) +
         "}";
}

std::string BuildMetricsOkMessage(const std::string& text) {
  std::string msg = "{\"type\":\"metrics_ok\",\"text\":";
  AppendJsonString(&msg, text);
  msg += "}";
  return msg;
}

std::string BuildErrorMessage(long id, const char* code,
                              const std::string& message) {
  std::string msg = "{\"type\":\"error\"";
  if (id >= 0) msg += ",\"id\":" + std::to_string(id);
  msg += ",\"code\":\"";
  msg += code;
  msg += "\",\"message\":";
  AppendJsonString(&msg, message);
  msg += "}";
  return msg;
}

}  // namespace net
}  // namespace osd
