// Standalone OSD network service: a poll-based TCP front end over one
// QueryEngine.
//
// Architecture: one event-loop thread owns the listener, the wake pipe and
// every connection's socket; engine workers execute queries and talk back
// to connections only through two narrow, mutex-guarded channels — the
// per-connection output buffer (progressive "candidate" frames and the
// terminal "result" frame are appended there by the QuerySpec hooks) and
// the server-level inflight accounting. No socket is ever touched off the
// loop thread.
//
// Per-connection lifecycle: accept -> hello (names the tenant) ->
// submit/cancel/status/metrics until bye, disconnect or drain. A framing
// or JSON-syntax error desynchronizes the byte stream and is fatal to the
// connection (error frame, then close after flush); a schema violation is
// request-scoped (error frame, connection lives). A mid-query disconnect
// cancels that connection's in-flight tickets; concurrent tenants are
// untouched and every ticket still completes through the engine (zero
// leaked tickets by construction — the terminal hook always runs).
//
// Tenant governance rides the existing machinery: the per-tenant policy
// caps each query's memory budget (QuerySpec::per_query_mem_bytes ->
// QueryBudgetScope), bounds in-flight queries per tenant (shed with an
// over_inflight_limit error), pins the retry policy, gates writes
// (allow_writes / max_mutation_ops on "mutate" frames), and labels the
// Prometheus export (osd_tenant_*{tenant="..."} series in MetricsText).
//
// Adversarial-load posture: every per-connection output buffer is bounded.
// Above the soft high watermark, progressive candidate frames coalesce
// into one bounded summary per query (flushed below the low watermark and
// before that query's terminal frame); past the hard cap the connection is
// evicted with a slow_consumer error frame. The loop additionally evicts
// idle connections and write-stalled connections (peer not draining its
// receive window) on configurable timeouts, and caps total connections at
// accept time. A client disconnect immediately cancels that connection's
// in-flight tickets; tenant inflight slots are released when each ticket
// finishes — never early, never twice.
//
// Graceful drain (SIGTERM or a "drain" frame): stop accepting, refuse new
// submits, let in-flight tickets finish and their terminal frames flush,
// then engine.Drain() and exit the loop. RequestDrain() is callable from a
// signal handler (one atomic store plus a pipe write).
//
// Failpoint sites: net.accept, net.read, net.write — an injected fault
// closes the affected connection only; the loop and every other
// connection keep serving.

#ifndef OSD_NET_SERVER_H_
#define OSD_NET_SERVER_H_

#include <atomic>
#include <chrono>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "engine/query_engine.h"
#include "io/durable_store.h"
#include "net/json.h"
#include "net/protocol.h"
#include "net/socket.h"
#include "net/wire.h"
#include "obs/metrics.h"

namespace osd {
namespace net {

/// Per-tenant governance knobs. The zero value means "inherit the server
/// default" (which itself may be unlimited).
struct TenantPolicy {
  /// Per-query memory cap for this tenant's queries; caps (never raises)
  /// any budget the request asks for. 0 = server default.
  long per_query_mem_bytes = 0;
  /// Concurrent in-flight queries; submits above it are shed with an
  /// over_inflight_limit error. 0 = unlimited.
  int max_inflight = 0;
  /// Retry policy override: >= 0 pins the transient-failure retry count
  /// for this tenant; -1 honours the request's "retries" field.
  int retries = -1;
  /// Whether this tenant may send "mutate" frames; a denied write is
  /// answered with a write_denied error and changes nothing.
  bool allow_writes = true;
  /// Per-batch op cap for this tenant's mutate frames; caps (never raises)
  /// the protocol-wide kMaxMutationOps. 0 = protocol default.
  int max_mutation_ops = 0;
};

struct ServerOptions {
  std::string host = "127.0.0.1";
  int port = 0;  ///< 0 picks a free port; read it back with port()
  size_t max_connections = 256;
  size_t max_frame_bytes = kMaxFrameBytes;
  /// Hard cap: a connection whose unflushed output passes this is evicted
  /// (pending output replaced by one slow_consumer error frame, delivered
  /// best-effort, then closed). Progressive streams would otherwise buffer
  /// without bound behind a reader that stopped reading.
  size_t max_output_buffer_bytes = 16u << 20;
  /// Soft watermarks on the per-connection output buffer (0 = off). Above
  /// the high watermark, progressive "candidate" frames stop being queued
  /// individually: each query's events are folded into one bounded
  /// "candidates_coalesced" summary that is flushed once the buffer drains
  /// below the low watermark (default high/2) and, at the latest,
  /// immediately before that query's terminal frame. Terminal frames are
  /// never coalesced; the hard cap above still evicts.
  size_t output_high_watermark_bytes = 0;
  size_t output_low_watermark_bytes = 0;
  /// Evict connections with no read activity, no in-flight queries and no
  /// pending output for this long (timeout error frame, then close).
  /// 0 = off.
  double idle_timeout_s = 0.0;
  /// Evict connections whose pending output makes no send progress for
  /// this long — the peer's receive window is closed and it is not
  /// draining it. 0 = off.
  double write_stall_timeout_s = 0.0;
  /// Policy for tenants without an explicit entry in `tenants`.
  TenantPolicy default_policy;
  std::map<std::string, TenantPolicy> tenants;
  /// Durability tier, when the owner runs one (osd_server --wal-dir). The
  /// server only *observes* it — status gains a "wal" block, metrics gain
  /// osd_wal_* series, and store-refused writes whose error carries the
  /// io::kStorageUnavailable prefix map to the storage_unavailable wire
  /// code. Attachment/sealing stay with the owner. Must outlive the server.
  const io::DurableStore* durable = nullptr;
};

/// The service front end. Does not own the engine: construct the engine
/// first (its options decide threads, shedding and the engine-wide memory
/// budget) and keep it alive until the server is destroyed. Run the engine
/// with shed_on_overload for serving — a blocking Submit would stall the
/// event loop.
class OsdServer {
 public:
  OsdServer(QueryEngine* engine, ServerOptions options);

  /// Drains and joins (see Shutdown).
  ~OsdServer();

  OsdServer(const OsdServer&) = delete;
  OsdServer& operator=(const OsdServer&) = delete;

  /// Binds, listens and starts the event loop. False + *error on failure.
  bool Start(std::string* error);

  /// The bound port (valid after Start; resolves port 0).
  int port() const { return port_; }

  /// Initiates graceful drain: stop accepting, refuse new submits, flush
  /// in-flight queries, then exit the loop. Async-signal-safe (an atomic
  /// store and a self-pipe write), so SIGTERM handlers may call it.
  void RequestDrain();

  /// Blocks until the event loop has exited (i.e. a drain completed).
  void Wait();

  /// RequestDrain + Wait; idempotent, implied by the destructor.
  void Shutdown();

  /// Prometheus text exposition: the engine's metrics followed by the
  /// server's (connection/frame/tenant series).
  std::string MetricsText() const;

  // Observability for tests and the smoke harness.
  long inflight() const { return inflight_total_.load(); }
  long queries_submitted() const { return queries_submitted_.load(); }
  long queries_completed() const { return queries_completed_.load(); }
  long connections_accepted() const { return connections_accepted_.load(); }
  bool draining() const { return drain_requested_.load(); }
  long evictions() const;
  long candidates_coalesced() const;
  /// Mutation ops applied through the wire (sum of mutate_ok "applied").
  long mutations_applied() const;

 private:
  struct TenantState {
    TenantPolicy policy;
    std::atomic<int> inflight{0};
    obs::Counter* queries = nullptr;
    obs::Counter* rejected = nullptr;
    obs::Counter* candidates_streamed = nullptr;
    obs::Gauge* inflight_gauge = nullptr;
  };

  struct Pending {
    std::shared_ptr<QueryTicket> ticket;
  };

  /// Per-query accumulator for candidate events withheld while the output
  /// buffer is above its high watermark. Bounded: ids stop growing at the
  /// truncation cap, only the count keeps counting.
  struct CoalesceState {
    int attempt = 0;
    long count = 0;
    bool truncated = false;
    std::vector<int> object_ids;
  };

  struct Connection {
    explicit Connection(Socket s)
        : sock(std::move(s)),
          last_read(std::chrono::steady_clock::now()) {}

    // Loop-thread-only state.
    Socket sock;
    FrameDecoder decoder{kMaxFrameBytes};
    bool hello_done = false;
    bool closing = false;  ///< stop reading; close once output flushes
    TenantState* tenant = nullptr;
    std::chrono::steady_clock::time_point last_read;  ///< idle-timeout clock

    // Cross-thread state: engine workers append frames and retire
    // inflight entries under `mu`.
    std::mutex mu;
    std::string out;
    bool closed = false;  ///< no further output accepted
    bool doomed = false;  ///< loop must evict (overflow / stall / idle)
    bool coalescing = false;  ///< above high watermark; candidates coalesce
    /// Last send progress while `out` is non-empty; epoch when empty.
    std::chrono::steady_clock::time_point stall_since{};
    std::map<long, CoalesceState> coalesced;
    std::map<long, Pending> inflight;
  };
  using ConnPtr = std::shared_ptr<Connection>;

  void Loop();
  void EnterDrain();
  void AcceptNew();
  void HandleReadable(const ConnPtr& conn);
  void FlushWrites(const ConnPtr& conn);
  void HandleFrame(const ConnPtr& conn, const std::string& payload);
  void HandleHello(const ConnPtr& conn, const JsonValue& msg);
  void HandleSubmit(const ConnPtr& conn, const JsonValue& msg);
  void HandleMutate(const ConnPtr& conn, const JsonValue& msg);
  void HandleCancel(const ConnPtr& conn, const JsonValue& msg);
  void HandleStatus(const ConnPtr& conn);
  void CloseConnection(const ConnPtr& conn);
  /// True when the connection has no in-flight queries (drain may retire
  /// it once its output flushes).
  bool ConnIdle(Connection& conn);
  /// Error frame + stop reading; the connection closes once the frame has
  /// flushed (fatal protocol-level failures).
  void FailConnection(const ConnPtr& conn, const std::string& message);

  /// Appends one framed payload to the connection's output buffer (drops
  /// it when the connection is closed; evicts the connection when the
  /// hard buffer cap is passed). Safe from any thread.
  void AppendFrame(Connection& conn, const std::string& payload);
  /// AppendFrame body; requires `conn.mu` held.
  void AppendFrameLocked(Connection& conn, const std::string& payload);
  /// Queues one progressive candidate event, coalescing it into the
  /// per-query summary while the output buffer is above the high
  /// watermark. Safe from any thread.
  void AppendCandidate(Connection& conn, long id, long seq, int attempt,
                       int object_id, double elapsed_seconds);
  /// Replaces pending output with one final error frame and dooms the
  /// connection; the loop makes one best-effort flush before closing.
  /// Requires `conn.mu` held.
  void EvictLocked(Connection& conn, const char* code,
                   const std::string& message);
  /// Emits every pending coalesced summary and leaves coalescing mode.
  /// Requires `conn.mu` held.
  void EmitCoalescedLocked(Connection& conn);
  /// Loop-thread scan: evicts write-stalled and idle connections per
  /// ServerOptions timeouts.
  void ScanTimeouts(const ConnPtr& conn,
                    std::chrono::steady_clock::time_point now);

  /// Wakes the poll loop (safe from any thread and from signal handlers).
  void Wake();

  TenantState* ResolveTenant(const std::string& name);

  QueryEngine* engine_;
  ServerOptions options_;
  int port_ = -1;

  Socket listener_;
  Socket wake_rd_, wake_wr_;
  std::thread loop_thread_;
  bool started_ = false;
  bool joined_ = false;
  std::mutex lifecycle_mu_;  // guards Start/Wait/Shutdown transitions

  std::vector<ConnPtr> conns_;  // loop-thread-only
  bool draining_ = false;       // loop-thread-only (mirrors drain_requested_)

  std::atomic<bool> drain_requested_{false};
  std::atomic<long> inflight_total_{0};
  std::atomic<long> queries_submitted_{0};
  std::atomic<long> queries_completed_{0};
  std::atomic<long> connections_accepted_{0};

  std::mutex tenants_mu_;
  std::map<std::string, TenantState> tenants_;

  obs::MetricsRegistry registry_;
  struct HotMetrics {
    obs::Counter* accepted = nullptr;
    obs::Counter* disconnects = nullptr;
    obs::Counter* frames_read = nullptr;
    obs::Counter* frames_sent = nullptr;
    obs::Counter* bytes_read = nullptr;
    obs::Counter* bytes_sent = nullptr;
    obs::Counter* protocol_errors = nullptr;
    obs::Counter* evictions = nullptr;
    obs::Counter* candidates_coalesced = nullptr;
    obs::Counter* mutations = nullptr;
    obs::Counter* mutations_rejected = nullptr;
    obs::Counter* storage_unavailable = nullptr;
    obs::Gauge* active = nullptr;
    obs::Gauge* draining = nullptr;
  };
  HotMetrics hot_;
};

}  // namespace net
}  // namespace osd

#endif  // OSD_NET_SERVER_H_
