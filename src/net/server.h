// Standalone OSD network service: a poll-based TCP front end over one
// QueryEngine.
//
// Architecture: one event-loop thread owns the listener, the wake pipe and
// every connection's socket; engine workers execute queries and talk back
// to connections only through two narrow, mutex-guarded channels — the
// per-connection output buffer (progressive "candidate" frames and the
// terminal "result" frame are appended there by the QuerySpec hooks) and
// the server-level inflight accounting. No socket is ever touched off the
// loop thread.
//
// Per-connection lifecycle: accept -> hello (names the tenant) ->
// submit/cancel/status/metrics until bye, disconnect or drain. A framing
// or JSON-syntax error desynchronizes the byte stream and is fatal to the
// connection (error frame, then close after flush); a schema violation is
// request-scoped (error frame, connection lives). A mid-query disconnect
// cancels that connection's in-flight tickets; concurrent tenants are
// untouched and every ticket still completes through the engine (zero
// leaked tickets by construction — the terminal hook always runs).
//
// Tenant governance rides the existing machinery: the per-tenant policy
// caps each query's memory budget (QuerySpec::per_query_mem_bytes ->
// QueryBudgetScope), bounds in-flight queries per tenant (shed with an
// over_inflight_limit error), pins the retry policy, and labels the
// Prometheus export (osd_tenant_*{tenant="..."} series in MetricsText).
//
// Graceful drain (SIGTERM or a "drain" frame): stop accepting, refuse new
// submits, let in-flight tickets finish and their terminal frames flush,
// then engine.Drain() and exit the loop. RequestDrain() is callable from a
// signal handler (one atomic store plus a pipe write).
//
// Failpoint sites: net.accept, net.read, net.write — an injected fault
// closes the affected connection only; the loop and every other
// connection keep serving.

#ifndef OSD_NET_SERVER_H_
#define OSD_NET_SERVER_H_

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "engine/query_engine.h"
#include "net/json.h"
#include "net/protocol.h"
#include "net/socket.h"
#include "net/wire.h"
#include "obs/metrics.h"

namespace osd {
namespace net {

/// Per-tenant governance knobs. The zero value means "inherit the server
/// default" (which itself may be unlimited).
struct TenantPolicy {
  /// Per-query memory cap for this tenant's queries; caps (never raises)
  /// any budget the request asks for. 0 = server default.
  long per_query_mem_bytes = 0;
  /// Concurrent in-flight queries; submits above it are shed with an
  /// over_inflight_limit error. 0 = unlimited.
  int max_inflight = 0;
  /// Retry policy override: >= 0 pins the transient-failure retry count
  /// for this tenant; -1 honours the request's "retries" field.
  int retries = -1;
};

struct ServerOptions {
  std::string host = "127.0.0.1";
  int port = 0;  ///< 0 picks a free port; read it back with port()
  size_t max_connections = 256;
  size_t max_frame_bytes = kMaxFrameBytes;
  /// A connection whose unflushed output passes this is dropped (slow or
  /// stalled client; progressive streams would otherwise buffer without
  /// bound).
  size_t max_output_buffer_bytes = 16u << 20;
  /// Policy for tenants without an explicit entry in `tenants`.
  TenantPolicy default_policy;
  std::map<std::string, TenantPolicy> tenants;
};

/// The service front end. Does not own the engine: construct the engine
/// first (its options decide threads, shedding and the engine-wide memory
/// budget) and keep it alive until the server is destroyed. Run the engine
/// with shed_on_overload for serving — a blocking Submit would stall the
/// event loop.
class OsdServer {
 public:
  OsdServer(QueryEngine* engine, ServerOptions options);

  /// Drains and joins (see Shutdown).
  ~OsdServer();

  OsdServer(const OsdServer&) = delete;
  OsdServer& operator=(const OsdServer&) = delete;

  /// Binds, listens and starts the event loop. False + *error on failure.
  bool Start(std::string* error);

  /// The bound port (valid after Start; resolves port 0).
  int port() const { return port_; }

  /// Initiates graceful drain: stop accepting, refuse new submits, flush
  /// in-flight queries, then exit the loop. Async-signal-safe (an atomic
  /// store and a self-pipe write), so SIGTERM handlers may call it.
  void RequestDrain();

  /// Blocks until the event loop has exited (i.e. a drain completed).
  void Wait();

  /// RequestDrain + Wait; idempotent, implied by the destructor.
  void Shutdown();

  /// Prometheus text exposition: the engine's metrics followed by the
  /// server's (connection/frame/tenant series).
  std::string MetricsText() const;

  // Observability for tests and the smoke harness.
  long inflight() const { return inflight_total_.load(); }
  long queries_submitted() const { return queries_submitted_.load(); }
  long queries_completed() const { return queries_completed_.load(); }
  long connections_accepted() const { return connections_accepted_.load(); }
  bool draining() const { return drain_requested_.load(); }

 private:
  struct TenantState {
    TenantPolicy policy;
    std::atomic<int> inflight{0};
    obs::Counter* queries = nullptr;
    obs::Counter* rejected = nullptr;
    obs::Counter* candidates_streamed = nullptr;
    obs::Gauge* inflight_gauge = nullptr;
  };

  struct Pending {
    std::shared_ptr<QueryTicket> ticket;
  };

  struct Connection {
    explicit Connection(Socket s) : sock(std::move(s)) {}

    // Loop-thread-only state.
    Socket sock;
    FrameDecoder decoder{kMaxFrameBytes};
    bool hello_done = false;
    bool closing = false;  ///< stop reading; close once output flushes
    TenantState* tenant = nullptr;

    // Cross-thread state: engine workers append frames and retire
    // inflight entries under `mu`.
    std::mutex mu;
    std::string out;
    bool closed = false;  ///< no further output accepted
    bool doomed = false;  ///< loop must close (output overflow)
    std::map<long, Pending> inflight;
  };
  using ConnPtr = std::shared_ptr<Connection>;

  void Loop();
  void EnterDrain();
  void AcceptNew();
  void HandleReadable(const ConnPtr& conn);
  void FlushWrites(const ConnPtr& conn);
  void HandleFrame(const ConnPtr& conn, const std::string& payload);
  void HandleHello(const ConnPtr& conn, const JsonValue& msg);
  void HandleSubmit(const ConnPtr& conn, const JsonValue& msg);
  void HandleCancel(const ConnPtr& conn, const JsonValue& msg);
  void HandleStatus(const ConnPtr& conn);
  void CloseConnection(const ConnPtr& conn);
  /// True when the connection has no in-flight queries (drain may retire
  /// it once its output flushes).
  bool ConnIdle(Connection& conn);
  /// Error frame + stop reading; the connection closes once the frame has
  /// flushed (fatal protocol-level failures).
  void FailConnection(const ConnPtr& conn, const std::string& message);

  /// Appends one framed payload to the connection's output buffer (drops
  /// it when the connection is closed; dooms the connection when the
  /// buffer cap is passed). Safe from any thread.
  void AppendFrame(Connection& conn, const std::string& payload);

  /// Wakes the poll loop (safe from any thread and from signal handlers).
  void Wake();

  TenantState* ResolveTenant(const std::string& name);

  QueryEngine* engine_;
  ServerOptions options_;
  int port_ = -1;

  Socket listener_;
  Socket wake_rd_, wake_wr_;
  std::thread loop_thread_;
  bool started_ = false;
  bool joined_ = false;
  std::mutex lifecycle_mu_;  // guards Start/Wait/Shutdown transitions

  std::vector<ConnPtr> conns_;  // loop-thread-only
  bool draining_ = false;       // loop-thread-only (mirrors drain_requested_)

  std::atomic<bool> drain_requested_{false};
  std::atomic<long> inflight_total_{0};
  std::atomic<long> queries_submitted_{0};
  std::atomic<long> queries_completed_{0};
  std::atomic<long> connections_accepted_{0};

  std::mutex tenants_mu_;
  std::map<std::string, TenantState> tenants_;

  obs::MetricsRegistry registry_;
  struct HotMetrics {
    obs::Counter* accepted = nullptr;
    obs::Counter* disconnects = nullptr;
    obs::Counter* frames_read = nullptr;
    obs::Counter* frames_sent = nullptr;
    obs::Counter* bytes_read = nullptr;
    obs::Counter* bytes_sent = nullptr;
    obs::Counter* protocol_errors = nullptr;
    obs::Gauge* active = nullptr;
    obs::Gauge* draining = nullptr;
  };
  HotMetrics hot_;
};

}  // namespace net
}  // namespace osd

#endif  // OSD_NET_SERVER_H_
