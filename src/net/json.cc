#include "net/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace osd {
namespace net {

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (type_ != Type::kObject) return nullptr;
  for (const auto& [name, value] : members_) {
    if (name == key) return &value;
  }
  return nullptr;
}

JsonValue JsonValue::Bool(bool b) {
  JsonValue v;
  v.type_ = Type::kBool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::Number(double value) {
  JsonValue v;
  v.type_ = Type::kNumber;
  v.number_ = value;
  return v;
}

JsonValue JsonValue::String(std::string s) {
  JsonValue v;
  v.type_ = Type::kString;
  v.string_ = std::move(s);
  return v;
}

JsonValue JsonValue::Array(std::vector<JsonValue> items) {
  JsonValue v;
  v.type_ = Type::kArray;
  v.items_ = std::move(items);
  return v;
}

JsonValue JsonValue::Object(
    std::vector<std::pair<std::string, JsonValue>> members) {
  JsonValue v;
  v.type_ = Type::kObject;
  v.members_ = std::move(members);
  return v;
}

bool IsValidUtf8(std::string_view bytes) {
  size_t i = 0;
  const size_t n = bytes.size();
  while (i < n) {
    const unsigned char c = static_cast<unsigned char>(bytes[i]);
    size_t len;
    unsigned cp;
    if (c < 0x80) {
      ++i;
      continue;
    } else if ((c & 0xE0) == 0xC0) {
      len = 2;
      cp = c & 0x1F;
    } else if ((c & 0xF0) == 0xE0) {
      len = 3;
      cp = c & 0x0F;
    } else if ((c & 0xF8) == 0xF0) {
      len = 4;
      cp = c & 0x07;
    } else {
      return false;  // continuation or invalid lead byte
    }
    if (i + len > n) return false;
    for (size_t k = 1; k < len; ++k) {
      const unsigned char cc = static_cast<unsigned char>(bytes[i + k]);
      if ((cc & 0xC0) != 0x80) return false;
      cp = (cp << 6) | (cc & 0x3F);
    }
    // Overlongs, surrogates and out-of-range code points are not UTF-8.
    if (len == 2 && cp < 0x80) return false;
    if (len == 3 && cp < 0x800) return false;
    if (len == 4 && cp < 0x10000) return false;
    if (cp >= 0xD800 && cp <= 0xDFFF) return false;
    if (cp > 0x10FFFF) return false;
    i += len;
  }
  return true;
}

void AppendJsonString(std::string* out, std::string_view s) {
  out->push_back('"');
  for (const char ch : s) {
    const unsigned char c = static_cast<unsigned char>(ch);
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\b': *out += "\\b"; break;
      case '\f': *out += "\\f"; break;
      case '\n': *out += "\\n"; break;
      case '\r': *out += "\\r"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(ch);
        }
    }
  }
  out->push_back('"');
}

std::string JsonNumber(double value) {
  if (!std::isfinite(value)) return "null";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

namespace {

/// Recursive-descent parser over a bounded view. Position-carrying so
/// error messages name the byte offset.
class Parser {
 public:
  Parser(std::string_view text, std::string* error)
      : text_(text), error_(error) {}

  bool Parse(JsonValue* out) {
    SkipWs();
    if (!ParseValue(out, 0)) return false;
    SkipWs();
    if (pos_ != text_.size()) return Fail("trailing garbage after document");
    return true;
  }

 private:
  bool Fail(const std::string& message) {
    if (error_ != nullptr) {
      *error_ = "json: " + message + " at byte " + std::to_string(pos_);
    }
    return false;
  }

  void SkipWs() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool ParseValue(JsonValue* out, int depth) {
    if (depth > kMaxJsonDepth) return Fail("nesting depth limit exceeded");
    if (pos_ >= text_.size()) return Fail("unexpected end of input");
    switch (text_[pos_]) {
      case '{': return ParseObject(out, depth);
      case '[': return ParseArray(out, depth);
      case '"': {
        std::string s;
        if (!ParseString(&s)) return false;
        *out = JsonValue::String(std::move(s));
        return true;
      }
      case 't':
        if (!Literal("true")) return false;
        *out = JsonValue::Bool(true);
        return true;
      case 'f':
        if (!Literal("false")) return false;
        *out = JsonValue::Bool(false);
        return true;
      case 'n':
        if (!Literal("null")) return false;
        *out = JsonValue::Null();
        return true;
      default: return ParseNumber(out);
    }
  }

  bool Literal(const char* word) {
    const size_t len = std::strlen(word);
    if (text_.compare(pos_, len, word) != 0) {
      return Fail(std::string("invalid literal (expected '") + word + "')");
    }
    pos_ += len;
    return true;
  }

  bool ParseNumber(JsonValue* out) {
    const size_t start = pos_;
    // Validate against the JSON number grammar first; strtod is far more
    // permissive (hex, "inf", "nan", leading '+') than RFC 8259 allows.
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    if (pos_ >= text_.size() || !std::isdigit(
            static_cast<unsigned char>(text_[pos_]))) {
      pos_ = start;
      return Fail("invalid number");
    }
    if (text_[pos_] == '0') {
      ++pos_;  // no leading zeros
    } else {
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (pos_ >= text_.size() ||
          !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        return Fail("invalid number (bare decimal point)");
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (pos_ >= text_.size() ||
          !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        return Fail("invalid number (empty exponent)");
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) return Fail("invalid number");
    if (!std::isfinite(value)) {
      return Fail("number out of double range");
    }
    *out = JsonValue::Number(value);
    return true;
  }

  bool ParseHex4(unsigned* out) {
    if (pos_ + 4 > text_.size()) return Fail("truncated \\u escape");
    unsigned value = 0;
    for (int k = 0; k < 4; ++k) {
      const char c = text_[pos_ + k];
      value <<= 4;
      if (c >= '0' && c <= '9') value |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f') value |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') value |= static_cast<unsigned>(c - 'A' + 10);
      else return Fail("invalid \\u escape digit");
    }
    pos_ += 4;
    *out = value;
    return true;
  }

  void AppendUtf8(std::string* s, unsigned cp) {
    if (cp < 0x80) {
      s->push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      s->push_back(static_cast<char>(0xC0 | (cp >> 6)));
      s->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      s->push_back(static_cast<char>(0xE0 | (cp >> 12)));
      s->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      s->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      s->push_back(static_cast<char>(0xF0 | (cp >> 18)));
      s->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      s->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      s->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  bool ParseString(std::string* out) {
    ++pos_;  // opening quote
    const size_t raw_start = pos_;
    out->clear();
    while (true) {
      if (pos_ >= text_.size()) return Fail("unterminated string");
      const unsigned char c = static_cast<unsigned char>(text_[pos_]);
      if (c == '"') break;
      if (c < 0x20) return Fail("raw control character in string");
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return Fail("truncated escape");
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': out->push_back('"'); break;
          case '\\': out->push_back('\\'); break;
          case '/': out->push_back('/'); break;
          case 'b': out->push_back('\b'); break;
          case 'f': out->push_back('\f'); break;
          case 'n': out->push_back('\n'); break;
          case 'r': out->push_back('\r'); break;
          case 't': out->push_back('\t'); break;
          case 'u': {
            unsigned cp = 0;
            if (!ParseHex4(&cp)) return false;
            if (cp >= 0xDC00 && cp <= 0xDFFF) {
              return Fail("lone low surrogate in \\u escape");
            }
            if (cp >= 0xD800 && cp <= 0xDBFF) {
              // High surrogate: the low half must follow immediately.
              if (pos_ + 2 > text_.size() || text_[pos_] != '\\' ||
                  text_[pos_ + 1] != 'u') {
                return Fail("lone high surrogate in \\u escape");
              }
              pos_ += 2;
              unsigned low = 0;
              if (!ParseHex4(&low)) return false;
              if (low < 0xDC00 || low > 0xDFFF) {
                return Fail("invalid surrogate pair in \\u escape");
              }
              cp = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
            }
            AppendUtf8(out, cp);
            break;
          }
          default: return Fail("unknown escape sequence");
        }
      } else {
        out->push_back(static_cast<char>(c));
        ++pos_;
      }
    }
    // Validate the raw span (covers multi-byte sequences copied verbatim).
    if (!IsValidUtf8(text_.substr(raw_start, pos_ - raw_start))) {
      return Fail("invalid UTF-8 in string");
    }
    ++pos_;  // closing quote
    return true;
  }

  bool ParseArray(JsonValue* out, int depth) {
    ++pos_;  // '['
    std::vector<JsonValue> items;
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      *out = JsonValue::Array(std::move(items));
      return true;
    }
    while (true) {
      JsonValue item;
      SkipWs();
      if (!ParseValue(&item, depth + 1)) return false;
      items.push_back(std::move(item));
      SkipWs();
      if (pos_ >= text_.size()) return Fail("unterminated array");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        *out = JsonValue::Array(std::move(items));
        return true;
      }
      return Fail("expected ',' or ']' in array");
    }
  }

  bool ParseObject(JsonValue* out, int depth) {
    ++pos_;  // '{'
    std::vector<std::pair<std::string, JsonValue>> members;
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      *out = JsonValue::Object(std::move(members));
      return true;
    }
    while (true) {
      SkipWs();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Fail("expected string key in object");
      }
      std::string key;
      if (!ParseString(&key)) return false;
      for (const auto& [existing, unused] : members) {
        (void)unused;
        if (existing == key) return Fail("duplicate object key '" + key + "'");
      }
      SkipWs();
      if (pos_ >= text_.size() || text_[pos_] != ':') {
        return Fail("expected ':' after object key");
      }
      ++pos_;
      SkipWs();
      JsonValue value;
      if (!ParseValue(&value, depth + 1)) return false;
      members.emplace_back(std::move(key), std::move(value));
      SkipWs();
      if (pos_ >= text_.size()) return Fail("unterminated object");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        *out = JsonValue::Object(std::move(members));
        return true;
      }
      return Fail("expected ',' or '}' in object");
    }
  }

  std::string_view text_;
  std::string* error_;
  size_t pos_ = 0;
};

}  // namespace

bool ParseJson(std::string_view text, JsonValue* out, std::string* error) {
  Parser parser(text, error);
  return parser.Parse(out);
}

}  // namespace net
}  // namespace osd
