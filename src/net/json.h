// Strict JSON for the wire protocol (net/wire.h, net/protocol.h).
//
// Payloads come off a socket, so parsing holds the same standard as the
// hardened binary dataset loader (io/dataset_io.cc): every structural
// bound is checked before the corresponding allocation, nothing is trusted
// because it parsed, and errors are reported through bool + message — the
// parser never throws on malformed input.
//
// Strictness (deliberately tighter than "whatever strtod accepts"):
//  - RFC 8259 grammar only: no trailing garbage, no comments, no trailing
//    commas, no single quotes, no unquoted keys.
//  - No NaN/Infinity literals (they are not JSON), and numeric values that
//    overflow double (1e999) are rejected rather than returned as inf, so
//    a finite-looking schema field can never smuggle a non-finite value.
//  - Strings must be valid UTF-8 (raw bytes) and valid escapes; \uD800-
//    style lone surrogates are rejected.
//  - Nesting depth is capped (kMaxJsonDepth) so a "[[[[..." bomb fails
//    fast instead of exhausting the stack.
//
// JsonValue is a plain tagged value; object members keep insertion order
// and are looked up linearly (protocol messages have < 20 keys).

#ifndef OSD_NET_JSON_H_
#define OSD_NET_JSON_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace osd {
namespace net {

/// Maximum nesting depth ParseJson accepts.
inline constexpr int kMaxJsonDepth = 64;

class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  /// Typed accessors; valid only for the matching type (callers branch on
  /// the is_* predicates first — schema validation, not assertions).
  bool AsBool() const { return bool_; }
  double AsNumber() const { return number_; }
  const std::string& AsString() const { return string_; }
  const std::vector<JsonValue>& Items() const { return items_; }
  const std::vector<std::pair<std::string, JsonValue>>& Members() const {
    return members_;
  }

  /// Object member by key, or nullptr when absent (or not an object).
  const JsonValue* Find(std::string_view key) const;

  /// Construction (used by the parser and tests).
  static JsonValue Null() { return JsonValue(); }
  static JsonValue Bool(bool b);
  static JsonValue Number(double v);
  static JsonValue String(std::string s);
  static JsonValue Array(std::vector<JsonValue> items);
  static JsonValue Object(std::vector<std::pair<std::string, JsonValue>> m);

 private:
  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> items_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

/// Parses exactly one JSON document spanning all of `text`. On failure
/// returns false, leaves *out unspecified, and sets *error (optional) to a
/// message with a byte offset.
bool ParseJson(std::string_view text, JsonValue* out,
               std::string* error = nullptr);

/// Appends `s` as a JSON string literal (quotes included) to *out,
/// escaping quotes, backslashes and control characters.
void AppendJsonString(std::string* out, std::string_view s);

/// Renders a double as a JSON number that round-trips bit-exactly through
/// ParseJson (%.17g); non-finite inputs render as null (callers validate
/// before emitting — this is a backstop, not a feature).
std::string JsonNumber(double value);

/// True iff `bytes` is well-formed UTF-8. Exposed for the hardening tests.
bool IsValidUtf8(std::string_view bytes);

}  // namespace net
}  // namespace osd

#endif  // OSD_NET_JSON_H_
