// Minimal blocking client for the OSD wire protocol.
//
// One OsdClient owns one connection and speaks one frame at a time:
// Connect performs the hello/hello_ok handshake, Send frames and writes a
// JSON payload, Read blocks for the next complete frame and parses it.
// Streaming consumers (the CLI's `query` subcommand, the throughput
// bench) loop on Read and dispatch on the message "type" — candidate
// events until the terminal result/error frame.
//
// Not thread-safe; use one client per thread.

#ifndef OSD_NET_CLIENT_H_
#define OSD_NET_CLIENT_H_

#include <string>

#include "net/json.h"
#include "net/socket.h"
#include "net/wire.h"

namespace osd {
namespace net {

class OsdClient {
 public:
  OsdClient() = default;

  /// Connects and completes the hello handshake under `tenant`. On success
  /// hello_ok() holds the server's greeting (dataset shape included).
  bool Connect(const std::string& host, int port, const std::string& tenant,
               std::string* error);

  bool connected() const { return sock_.valid(); }
  const JsonValue& hello_ok() const { return hello_ok_; }

  /// Raw socket descriptor, for callers that need to batch several frames
  /// into one write (tests) or poll alongside other descriptors.
  int fd() const { return sock_.fd(); }

  /// Frames and writes one JSON payload.
  bool Send(const std::string& payload, std::string* error);

  /// Blocks for the next complete frame and parses it into *msg. False on
  /// EOF, I/O error, framing violation or invalid JSON (the connection is
  /// unusable afterwards). When `raw` is non-null it receives the
  /// undecoded payload text.
  bool Read(JsonValue* msg, std::string* error, std::string* raw = nullptr);

  void Close() { sock_.Close(); }

 private:
  Socket sock_;
  FrameDecoder decoder_;
  JsonValue hello_ok_;
};

}  // namespace net
}  // namespace osd

#endif  // OSD_NET_CLIENT_H_
