// Length-prefixed framing for the OSD wire protocol.
//
// A frame is a 4-byte big-endian unsigned payload length followed by that
// many bytes of UTF-8 JSON. Framing is the only binary part of the
// protocol; everything above it (net/protocol.h) is declarative JSON.
//
// Hardening contract (mirrors LoadBinary): the declared length is checked
// against the frame cap BEFORE any payload buffer grows, so a hostile
// 0xFFFFFFFF prefix costs four bytes of buffering, not 4 GiB of
// allocation. Zero-length frames are protocol errors (every message is at
// least "{}"), and a decoder that has reported an error stays failed —
// the byte stream is desynchronized and the connection must be dropped.

#ifndef OSD_NET_WIRE_H_
#define OSD_NET_WIRE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace osd {
namespace net {

/// Default cap on one frame's payload bytes. Large enough for a query
/// object at the protocol's instance caps, small enough that a handful of
/// hostile connections cannot balloon server memory.
inline constexpr size_t kMaxFrameBytes = 1u << 20;

/// Frame header bytes (big-endian uint32 payload length).
inline constexpr size_t kFrameHeaderBytes = 4;

/// Encodes `payload` as one frame. The payload must not exceed
/// `max_frame_bytes` (checked; oversized input returns an empty string,
/// which is never a valid frame).
std::string EncodeFrame(std::string_view payload,
                        size_t max_frame_bytes = kMaxFrameBytes);

/// Incremental frame decoder: feed raw socket bytes in, pop complete
/// payloads out. Single-owner (one per connection), not thread-safe.
class FrameDecoder {
 public:
  explicit FrameDecoder(size_t max_frame_bytes = kMaxFrameBytes)
      : max_frame_bytes_(max_frame_bytes) {}

  /// Appends raw bytes. Returns false iff the stream violates the framing
  /// contract (oversized or zero declared length); the decoder is then
  /// permanently failed and error() explains why.
  bool Feed(const char* data, size_t size);

  /// Pops the next complete payload into *payload; false when no complete
  /// frame is buffered (or the decoder has failed).
  bool Next(std::string* payload);

  bool failed() const { return failed_; }
  const std::string& error() const { return error_; }

  /// Bytes currently buffered (diagnostics / backpressure accounting).
  size_t buffered_bytes() const { return buffer_.size(); }

 private:
  size_t max_frame_bytes_;
  std::string buffer_;
  bool failed_ = false;
  std::string error_;
};

}  // namespace net
}  // namespace osd

#endif  // OSD_NET_WIRE_H_
