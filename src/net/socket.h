// Thin RAII + error-string wrappers over POSIX TCP sockets.
//
// Everything the service tier needs and nothing more: an owning fd, an
// IPv4 listener (loopback by default), a blocking connector for clients,
// and send/recv helpers that fold EINTR handling in one place. Errors are
// reported bool + message, matching the dataset-I/O idiom — the network
// layer never throws for I/O outcomes.

#ifndef OSD_NET_SOCKET_H_
#define OSD_NET_SOCKET_H_

#include <sys/types.h>

#include <string>

namespace osd {
namespace net {

/// Move-only owning file descriptor.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { Close(); }

  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;
  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept {
    if (this != &other) {
      Close();
      fd_ = other.fd_;
      other.fd_ = -1;
    }
    return *this;
  }

  int fd() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  void Close();

  /// Releases ownership of the fd to the caller.
  int Release() {
    const int fd = fd_;
    fd_ = -1;
    return fd;
  }

 private:
  int fd_ = -1;
};

/// Binds and listens on host:port (IPv4 dotted quad; port 0 picks a free
/// port — read it back with LocalPort). The listener is non-blocking and
/// close-on-exec.
bool ListenTcp(const std::string& host, int port, Socket* out,
               std::string* error);

/// Blocking connect to host:port (IPv4 dotted quad).
bool ConnectTcp(const std::string& host, int port, Socket* out,
                std::string* error);

/// The locally bound port of a socket (resolves port-0 listeners).
int LocalPort(const Socket& socket);

/// Switches an fd to non-blocking mode.
bool SetNonBlocking(int fd, std::string* error);

/// Blocking write of the whole buffer (retries EINTR and partial writes).
bool SendAll(int fd, const char* data, size_t size, std::string* error);

/// One blocking read; returns bytes read, 0 on orderly EOF, -1 on error
/// (EINTR folded in).
ssize_t RecvSome(int fd, char* buffer, size_t size);

}  // namespace net
}  // namespace osd

#endif  // OSD_NET_SOCKET_H_
