#include "net/socket.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>

#include <cstring>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

namespace osd {
namespace net {

namespace {

std::string Errno(const std::string& what) {
  return what + ": " + std::strerror(errno);
}

bool MakeAddress(const std::string& host, int port, sockaddr_in* addr,
                 std::string* error) {
  if (port < 0 || port > 65535) {
    if (error != nullptr) *error = "port out of range";
    return false;
  }
  std::memset(addr, 0, sizeof(*addr));
  addr->sin_family = AF_INET;
  addr->sin_port = htons(static_cast<uint16_t>(port));
  if (inet_pton(AF_INET, host.c_str(), &addr->sin_addr) != 1) {
    if (error != nullptr) {
      *error = "invalid IPv4 address '" + host + "'";
    }
    return false;
  }
  return true;
}

}  // namespace

void Socket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

bool SetNonBlocking(int fd, std::string* error) {
  const int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0 || fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    if (error != nullptr) *error = Errno("fcntl(O_NONBLOCK)");
    return false;
  }
  return true;
}

bool ListenTcp(const std::string& host, int port, Socket* out,
               std::string* error) {
  sockaddr_in addr;
  if (!MakeAddress(host, port, &addr, error)) return false;
  Socket sock(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!sock.valid()) {
    if (error != nullptr) *error = Errno("socket");
    return false;
  }
  const int one = 1;
  setsockopt(sock.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (bind(sock.fd(), reinterpret_cast<const sockaddr*>(&addr),
           sizeof(addr)) != 0) {
    if (error != nullptr) {
      *error = Errno("bind " + host + ":" + std::to_string(port));
    }
    return false;
  }
  if (listen(sock.fd(), 128) != 0) {
    if (error != nullptr) *error = Errno("listen");
    return false;
  }
  if (!SetNonBlocking(sock.fd(), error)) return false;
  *out = std::move(sock);
  return true;
}

bool ConnectTcp(const std::string& host, int port, Socket* out,
                std::string* error) {
  sockaddr_in addr;
  if (!MakeAddress(host, port, &addr, error)) return false;
  Socket sock(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!sock.valid()) {
    if (error != nullptr) *error = Errno("socket");
    return false;
  }
  int rc;
  do {
    rc = connect(sock.fd(), reinterpret_cast<const sockaddr*>(&addr),
                 sizeof(addr));
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) {
    if (error != nullptr) {
      *error = Errno("connect " + host + ":" + std::to_string(port));
    }
    return false;
  }
  const int one = 1;
  setsockopt(sock.fd(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  *out = std::move(sock);
  return true;
}

int LocalPort(const Socket& socket) {
  sockaddr_in addr;
  socklen_t len = sizeof(addr);
  if (getsockname(socket.fd(), reinterpret_cast<sockaddr*>(&addr), &len) !=
      0) {
    return -1;
  }
  return static_cast<int>(ntohs(addr.sin_port));
}

bool SendAll(int fd, const char* data, size_t size, std::string* error) {
  size_t sent = 0;
  while (sent < size) {
    const ssize_t n = ::send(fd, data + sent, size - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (error != nullptr) *error = Errno("send");
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

ssize_t RecvSome(int fd, char* buffer, size_t size) {
  ssize_t n;
  do {
    n = ::recv(fd, buffer, size, 0);
  } while (n < 0 && errno == EINTR);
  return n;
}

}  // namespace net
}  // namespace osd
