#include "common/interrupt.h"

namespace osd {
namespace interrupt {
namespace internal {

thread_local Scope* g_scope = nullptr;

void PollSlow(Scope* scope) {
  if (scope->cancel_ != nullptr &&
      scope->cancel_->load(std::memory_order_relaxed)) {
    throw Interrupted(Kind::kCancelled);
  }
  if (scope->has_deadline_ &&
      scope->polls_++ % Scope::kDeadlineStride == 0 &&
      std::chrono::steady_clock::now() >= scope->deadline_) {
    throw Interrupted(Kind::kDeadlineExceeded);
  }
}

}  // namespace internal
}  // namespace interrupt
}  // namespace osd
