// Lightweight runtime-check macros used across the OSD library.
//
// OSD_CHECK aborts with a diagnostic on contract violations in all build
// modes; OSD_DCHECK compiles away in release builds. Following the database
// C++ guide idiom, these are used for programmer errors (violated
// preconditions), never for recoverable conditions.

#ifndef OSD_COMMON_CHECK_H_
#define OSD_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

#define OSD_CHECK(cond)                                                      \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::fprintf(stderr, "OSD_CHECK failed: %s at %s:%d\n", #cond,         \
                   __FILE__, __LINE__);                                      \
      std::abort();                                                          \
    }                                                                        \
  } while (0)

#ifdef NDEBUG
#define OSD_DCHECK(cond) \
  do {                   \
  } while (0)
#else
#define OSD_DCHECK(cond) OSD_CHECK(cond)
#endif

#endif  // OSD_COMMON_CHECK_H_
