// Named fault-injection points for testing failure paths deliberately.
//
// A failpoint is a named site in library code (R-tree traversal, local-tree
// refinement, dominance checks, dataset I/O, engine execution) that tests
// can arm to throw, return an error, or delay. Sites are compiled in only
// when the build is configured with -DOSD_FAILPOINTS=ON; release builds
// reduce every site to a no-op with zero overhead. The trigger registry
// itself is always compiled, so trigger semantics (spec parsing, N-th-hit
// arming, exhaustion, counters) stay testable in every build via
// Evaluate().
//
// Spec strings (env-style, e.g. via $OSD_FAILPOINTS or --failpoints):
//
//   spec    := entry (',' entry)*
//   entry   := site '=' trigger
//   trigger := 'off' | [N 'x'] action ['(' arg ')'] ['@' S | '@p=' P]
//   action  := 'throw' | 'throw_bad_alloc' | 'error' | 'delay' | 'abort'
//
//   site                site names use [A-Za-z0-9_.-]
//   throw[(message)]    throw InjectedFault (an osd::TransientError)
//   throw_bad_alloc     throw std::bad_alloc — simulates an allocation
//                       failure at the site without exhausting RAM
//   error               make OSD_FAILPOINT_ERROR sites take their error
//                       path (a no-op at plain OSD_FAILPOINT sites)
//   delay(ms)           sleep for `ms` milliseconds, then continue
//   abort               std::abort() — simulated crash (no unwinding, no
//                       flushes) for kill-injection durability tests
//   Nx                  fire at most N times, then stay dormant
//   @S                  first firing on the S-th hit (1-based)
//   @p=P                probabilistic: each hit fires with probability P,
//                       P in (0, 1], drawn from the registry RNG (seeded
//                       via $OSD_FAILPOINT_SEED or SeedRng() so chaos runs
//                       replay identically). Mutually exclusive with @S;
//                       composes with Nx (at most N probabilistic fires).
//
// Examples:
//   nnc.pop=throw@100            throw on the 100th heap pop
//   io.binary.object=2xerror     fail the first two binary object reads
//   dominance.check=delay(5)@10  5 ms stall from the 10th check onward
//   mem.charge=throw_bad_alloc   OOM on the first budget charge
//   flow.augment=throw@p=0.01    each augmenting phase fails w.p. 1%
//
// Configure rejects malformed specs atomically (missing '=', bad counts,
// trailing garbage, non-finite delays, duplicate sites) and — so a typo'd
// spec cannot silently arm nothing — any site name the library does not
// actually contain. Sites under the reserved "test." prefix bypass the
// known-site check; tests use them to drive the registry directly.
//
// Thread-safety: Configure / Clear / Evaluate / the counters may be called
// from any thread; triggers fire atomically (a 2xerror spec fires exactly
// twice across all threads combined).

#ifndef OSD_COMMON_FAILPOINT_H_
#define OSD_COMMON_FAILPOINT_H_

#include <atomic>
#include <stdexcept>
#include <string>
#include <vector>

namespace osd {

/// Failures that are worth retrying (transient by contract). The engine's
/// RetryPolicy retries these and nothing else; injected faults derive from
/// it so fault-injection tests exercise the retry machinery.
class TransientError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

namespace failpoint {

/// The exception thrown by a `throw` trigger; carries the site name so
/// error reports can say which failpoint fired.
class InjectedFault : public TransientError {
 public:
  InjectedFault(std::string site, const std::string& message)
      : TransientError(message), site_(std::move(site)) {}
  const std::string& site() const { return site_; }

 private:
  std::string site_;
};

#if defined(OSD_FAILPOINTS_ENABLED)
inline constexpr bool kCompiledIn = true;
#else
inline constexpr bool kCompiledIn = false;
#endif

/// True when failpoint *sites* are compiled into the library. The registry
/// works either way; with sites compiled out, armed triggers simply never
/// get hit by library code.
inline bool Enabled() { return kCompiledIn; }

/// Parses and applies a spec string (see the header comment). All entries
/// are validated before any is applied; on a parse error nothing changes,
/// *error (optional) gets a precise message, and false is returned.
/// Re-configuring a site replaces its trigger and resets its counters;
/// `site=off` disarms one site.
bool Configure(const std::string& spec, std::string* error = nullptr);

/// Applies the spec in $OSD_FAILPOINTS, if set and non-empty.
bool ConfigureFromEnv(std::string* error = nullptr);

/// Disarms every site and resets all counters.
void Clear();

/// Hits observed at `site` while it was configured (armed or dormant).
long HitCount(const std::string& site);

/// Times the trigger at `site` actually fired.
long FireCount(const std::string& site);

/// Names of currently configured sites, sorted.
std::vector<std::string> ArmedSites();

/// Every site name compiled into the library (the Configure whitelist),
/// sorted. Chaos drivers use this to build random multi-site storms
/// without hard-coding the site list.
std::vector<std::string> KnownSiteNames();

/// Reseeds the registry RNG that `@p=` triggers draw from. Defaults to a
/// fixed constant (overridable via $OSD_FAILPOINT_SEED) so probabilistic
/// chaos runs are reproducible by construction.
void SeedRng(unsigned long long seed);

namespace internal {
/// Number of configured sites; lets Evaluate skip the registry lock (one
/// relaxed load) whenever nothing is armed.
extern std::atomic<long> g_configured;
bool Hit(const char* site);
}  // namespace internal

/// Evaluates the trigger at `site`: may throw InjectedFault or sleep;
/// returns true iff an `error` trigger fired. This is what the site macros
/// expand to; tests may also call it directly to drive the registry.
inline bool Evaluate(const char* site) {
  if (internal::g_configured.load(std::memory_order_relaxed) == 0) {
    return false;
  }
  return internal::Hit(site);
}

}  // namespace failpoint
}  // namespace osd

// Site macros. OSD_FAILPOINT marks a site that can throw or delay (an
// `error` trigger is a no-op there); OSD_FAILPOINT_ERROR additionally runs
// `stmt` — typically `return Fail(...)` — when an `error` trigger fires.
#if defined(OSD_FAILPOINTS_ENABLED)
#define OSD_FAILPOINT(site)                    \
  do {                                         \
    (void)::osd::failpoint::Evaluate(site);    \
  } while (0)
#define OSD_FAILPOINT_ERROR(site, stmt)        \
  do {                                         \
    if (::osd::failpoint::Evaluate(site)) {    \
      stmt;                                    \
    }                                          \
  } while (0)
#else
#define OSD_FAILPOINT(site) ((void)0)
#define OSD_FAILPOINT_ERROR(site, stmt) ((void)0)
#endif

#endif  // OSD_COMMON_FAILPOINT_H_
