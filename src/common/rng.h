// Deterministic random number generation helpers.
//
// All data generators in the library take an explicit Rng so experiments are
// reproducible bit-for-bit across runs; no global random state exists.

#ifndef OSD_COMMON_RNG_H_
#define OSD_COMMON_RNG_H_

#include <cstdint>
#include <random>

namespace osd {

/// Seeded pseudo-random generator wrapping std::mt19937_64 with convenience
/// draws used throughout the data generators and tests.
class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed) {}

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    return std::uniform_int_distribution<int64_t>(lo, hi)(engine_);
  }

  /// Normal draw with the given mean and standard deviation.
  double Normal(double mean, double stddev) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  /// Exponential draw with the given rate.
  double Exponential(double rate) {
    return std::exponential_distribution<double>(rate)(engine_);
  }

  /// Bernoulli draw.
  bool Flip(double p) { return std::bernoulli_distribution(p)(engine_); }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace osd

#endif  // OSD_COMMON_RNG_H_
