#include "common/failpoint.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <map>
#include <mutex>
#include <new>
#include <random>
#include <thread>
#include <utility>

namespace osd::failpoint {

namespace {

enum class Action { kThrow, kBadAlloc, kError, kDelay, kAbort };

/// Every OSD_FAILPOINT / OSD_FAILPOINT_ERROR site compiled into the
/// library. Configure rejects any other site name (minus the "test."
/// escape) so a typo'd spec fails loudly instead of silently arming a
/// trigger nothing will ever hit. Keep in sync with the site macros.
constexpr const char* kKnownSites[] = {
    "dominance.check",    "dominance.level",  "engine.execute",
    "envelope.round",     "flow.augment",     "io.binary.header",
    "io.binary.object",   "io.checkpoint.write",
    "io.open",            "io.recover.replay",
    "io.text.header",     "io.text.object",   "io.wal.append",
    "io.wal.fsync",       "mem.charge",       "mem.flow.build",
    "mem.nnc.heap",       "mem.profile.matrix",
    "mem.profile.sorted", "net.accept",       "net.read",
    "net.write",          "nnc.node_expand",  "nnc.object_examine",
    "nnc.pop",            "object.local_tree",
};

bool KnownSite(const std::string& site) {
  if (site.rfind("test.", 0) == 0) return true;  // reserved for tests
  for (const char* known : kKnownSites) {
    if (site == known) return true;
  }
  return false;
}

struct Trigger {
  Action action = Action::kThrow;
  std::string message;
  double delay_ms = 0.0;
  long start_hit = 1;        // 1-based hit index of the first firing
  long max_fires = -1;       // -1 = unlimited
  double probability = 1.0;  // per-hit fire probability (from @p=)
  long hits = 0;
  long fires = 0;
};

/// Fixed default seed for the @p= RNG: probabilistic chaos runs replay
/// identically unless the caller chooses otherwise ($OSD_FAILPOINT_SEED or
/// SeedRng).
constexpr unsigned long long kDefaultSeed = 0x05DC'0D5Dull;

struct Registry {
  Registry() {
    unsigned long long seed = kDefaultSeed;
    if (const char* env = std::getenv("OSD_FAILPOINT_SEED");
        env != nullptr && *env != '\0') {
      char* end = nullptr;
      const unsigned long long v = std::strtoull(env, &end, 10);
      if (end != nullptr && *end == '\0') seed = v;
    }
    rng.seed(seed);
  }
  std::mutex mu;
  std::map<std::string, Trigger> sites;
  std::mt19937_64 rng;  // draws happen under mu, so replays are exact
};

// Leaked singleton: failpoints may be evaluated during static destruction
// of test fixtures, so the registry must never be destroyed first.
Registry& Reg() {
  static Registry* r = new Registry;
  return *r;
}

bool ParseFail(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
  return false;
}

std::string Trim(const std::string& s) {
  size_t b = s.find_first_not_of(" \t\n\r");
  if (b == std::string::npos) return "";
  size_t e = s.find_last_not_of(" \t\n\r");
  return s.substr(b, e - b + 1);
}

bool ValidSiteName(const std::string& s) {
  if (s.empty()) return false;
  for (char c : s) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '.' ||
                    c == '-';
    if (!ok) return false;
  }
  return true;
}

bool ParseLong(const std::string& s, long* out) {
  if (s.empty()) return false;
  long v = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return false;
    if (v > (1L << 60)) return false;
    v = v * 10 + (c - '0');
  }
  *out = v;
  return true;
}

/// Parses one trigger expression; `site` only flavours error messages.
bool ParseTrigger(const std::string& site, const std::string& expr,
                  Trigger* t, bool* off, std::string* error) {
  *off = false;
  if (expr == "off") {
    *off = true;
    return true;
  }
  std::string rest = expr;

  // Optional `Nx` fire-count prefix.
  const size_t x = rest.find('x');
  if (x != std::string::npos && x > 0 &&
      rest.find_first_not_of("0123456789") == x) {
    long n = 0;
    if (!ParseLong(rest.substr(0, x), &n) || n < 1) {
      return ParseFail(error, site + ": bad fire count in '" + expr + "'");
    }
    t->max_fires = n;
    rest = rest.substr(x + 1);
  }

  // Optional `@S` start-hit or `@p=P` probability suffix. Only an '@'
  // after the argument's closing ')' is a suffix — `throw(a@b)` carries
  // the '@' in its message.
  size_t at = rest.rfind('@');
  const size_t close = rest.rfind(')');
  if (at != std::string::npos && close != std::string::npos && at < close) {
    at = std::string::npos;
  }
  if (at != std::string::npos) {
    const std::string suffix = rest.substr(at + 1);
    if (suffix.rfind("p=", 0) == 0) {
      const std::string num = suffix.substr(2);
      char* end = nullptr;
      const double p = std::strtod(num.c_str(), &end);
      if (num.empty() || end == nullptr || *end != '\0' ||
          !std::isfinite(p)) {
        return ParseFail(error, site + ": bad probability in '" + expr +
                                    "' (want @p=<number>)");
      }
      if (p <= 0.0 || p > 1.0) {
        return ParseFail(error,
                         site + ": probability " + num +
                             " out of range; @p= needs p in (0, 1]");
      }
      t->probability = p;
    } else {
      long s = 0;
      if (!ParseLong(suffix, &s) || s < 1) {
        return ParseFail(error, site + ": bad start hit in '" + expr + "'");
      }
      t->start_hit = s;
    }
    rest = rest.substr(0, at);
  }

  // Action with optional parenthesized argument.
  std::string action = rest;
  std::string arg;
  bool have_arg = false;
  const size_t open = rest.find('(');
  if (open != std::string::npos) {
    const size_t arg_close = rest.find(')', open + 1);
    if (arg_close == std::string::npos) {
      return ParseFail(error, site + ": missing ')' in '" + expr + "'");
    }
    if (arg_close != rest.size() - 1) {
      return ParseFail(error, site + ": trailing garbage after ')' in '" +
                                  expr + "'");
    }
    action = rest.substr(0, open);
    arg = rest.substr(open + 1, arg_close - open - 1);
    have_arg = true;
  } else if (rest.find(')') != std::string::npos) {
    return ParseFail(error, site + ": ')' without '(' in '" + expr + "'");
  }
  if (action == "throw") {
    t->action = Action::kThrow;
    t->message = arg;
  } else if (action == "throw_bad_alloc") {
    t->action = Action::kBadAlloc;
    if (have_arg) {
      return ParseFail(error, site + ": 'throw_bad_alloc' takes no argument");
    }
  } else if (action == "error") {
    t->action = Action::kError;
    if (have_arg) {
      return ParseFail(error, site + ": 'error' takes no argument");
    }
  } else if (action == "abort") {
    t->action = Action::kAbort;
    if (have_arg) {
      return ParseFail(error, site + ": 'abort' takes no argument");
    }
  } else if (action == "delay") {
    t->action = Action::kDelay;
    char* end = nullptr;
    t->delay_ms = std::strtod(arg.c_str(), &end);
    if (arg.empty() || end == nullptr || *end != '\0' ||
        !std::isfinite(t->delay_ms) || t->delay_ms < 0) {
      return ParseFail(error,
                       site + ": 'delay' needs a finite non-negative "
                              "millisecond argument, got '" +
                           arg + "'");
    }
  } else {
    return ParseFail(
        error,
        site + ": unknown action '" + action +
            "' (expected throw|throw_bad_alloc|error|delay|abort|off)");
  }
  return true;
}

}  // namespace

namespace internal {

std::atomic<long> g_configured{0};

bool Hit(const char* site) {
  Action action;
  double delay_ms = 0.0;
  std::string message;
  {
    std::lock_guard<std::mutex> lock(Reg().mu);
    auto it = Reg().sites.find(site);
    if (it == Reg().sites.end()) return false;
    Trigger& t = it->second;
    ++t.hits;
    if (t.hits < t.start_hit) return false;
    if (t.max_fires >= 0 && t.fires >= t.max_fires) return false;
    if (t.probability < 1.0) {
      // Draw under the registry lock: a fixed seed then yields one global
      // deterministic decision sequence, so storms replay exactly when the
      // workload's hit order is deterministic.
      std::uniform_real_distribution<double> uniform(0.0, 1.0);
      if (uniform(Reg().rng) >= t.probability) return false;
    }
    ++t.fires;
    action = t.action;
    delay_ms = t.delay_ms;
    message = t.message;
  }
  // Act outside the lock so a sleeping or throwing trigger never blocks
  // other sites (or this site on other threads).
  switch (action) {
    case Action::kDelay:
      std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
          delay_ms));
      return false;
    case Action::kThrow:
      throw InjectedFault(site,
                          message.empty() ? "injected fault" : message);
    case Action::kBadAlloc:
      throw std::bad_alloc();
    case Action::kError:
      return true;
    case Action::kAbort:
      // Simulated crash for kill-injection tests: die without unwinding or
      // flushing, exactly like SIGKILL mid-write (modulo the partial-write
      // torn tails, which the tests synthesize separately).
      std::abort();
  }
  return false;
}

}  // namespace internal

bool Configure(const std::string& spec, std::string* error) {
  // Validate every entry before applying any, so a bad spec is atomic.
  std::vector<std::pair<std::string, Trigger>> parsed;
  std::vector<std::string> disarm;
  size_t pos = 0;
  while (pos <= spec.size()) {
    size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string entry = Trim(spec.substr(pos, comma - pos));
    pos = comma + 1;
    if (entry.empty()) continue;
    const size_t eq = entry.find('=');
    if (eq == std::string::npos) {
      return ParseFail(error, "missing '=' in '" + entry + "'");
    }
    const std::string site = Trim(entry.substr(0, eq));
    const std::string expr = Trim(entry.substr(eq + 1));
    if (!ValidSiteName(site)) {
      return ParseFail(error, "bad site name '" + site + "'");
    }
    if (!KnownSite(site)) {
      return ParseFail(error, "unknown site '" + site +
                                  "' (not compiled into the library; use "
                                  "the 'test.' prefix for registry-only "
                                  "sites)");
    }
    for (const auto& [seen_site, seen_trigger] : parsed) {
      if (seen_site == site) {
        return ParseFail(error, "duplicate entry for site '" + site + "'");
      }
    }
    for (const std::string& seen_site : disarm) {
      if (seen_site == site) {
        return ParseFail(error, "duplicate entry for site '" + site + "'");
      }
    }
    Trigger t;
    bool off = false;
    if (!ParseTrigger(site, expr, &t, &off, error)) return false;
    if (off) {
      disarm.push_back(site);
    } else {
      parsed.emplace_back(site, t);
    }
  }

  std::lock_guard<std::mutex> lock(Reg().mu);
  for (const std::string& site : disarm) Reg().sites.erase(site);
  for (auto& [site, trigger] : parsed) Reg().sites[site] = trigger;
  internal::g_configured.store(static_cast<long>(Reg().sites.size()),
                               std::memory_order_relaxed);
  return true;
}

bool ConfigureFromEnv(std::string* error) {
  const char* spec = std::getenv("OSD_FAILPOINTS");
  if (spec == nullptr || *spec == '\0') return true;
  return Configure(spec, error);
}

void Clear() {
  std::lock_guard<std::mutex> lock(Reg().mu);
  Reg().sites.clear();
  internal::g_configured.store(0, std::memory_order_relaxed);
}

long HitCount(const std::string& site) {
  std::lock_guard<std::mutex> lock(Reg().mu);
  auto it = Reg().sites.find(site);
  return it == Reg().sites.end() ? 0 : it->second.hits;
}

long FireCount(const std::string& site) {
  std::lock_guard<std::mutex> lock(Reg().mu);
  auto it = Reg().sites.find(site);
  return it == Reg().sites.end() ? 0 : it->second.fires;
}

std::vector<std::string> ArmedSites() {
  std::lock_guard<std::mutex> lock(Reg().mu);
  std::vector<std::string> out;
  out.reserve(Reg().sites.size());
  for (const auto& [site, trigger] : Reg().sites) out.push_back(site);
  return out;
}

std::vector<std::string> KnownSiteNames() {
  std::vector<std::string> out(std::begin(kKnownSites),
                               std::end(kKnownSites));
  std::sort(out.begin(), out.end());
  return out;
}

void SeedRng(unsigned long long seed) {
  std::lock_guard<std::mutex> lock(Reg().mu);
  Reg().rng.seed(seed);
}

}  // namespace osd::failpoint
