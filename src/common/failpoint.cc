#include "common/failpoint.h"

#include <chrono>
#include <cstdlib>
#include <map>
#include <mutex>
#include <thread>
#include <utility>

namespace osd::failpoint {

namespace {

enum class Action { kThrow, kError, kDelay };

struct Trigger {
  Action action = Action::kThrow;
  std::string message;
  double delay_ms = 0.0;
  long start_hit = 1;   // 1-based hit index of the first firing
  long max_fires = -1;  // -1 = unlimited
  long hits = 0;
  long fires = 0;
};

struct Registry {
  std::mutex mu;
  std::map<std::string, Trigger> sites;
};

// Leaked singleton: failpoints may be evaluated during static destruction
// of test fixtures, so the registry must never be destroyed first.
Registry& Reg() {
  static Registry* r = new Registry;
  return *r;
}

bool ParseFail(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
  return false;
}

std::string Trim(const std::string& s) {
  size_t b = s.find_first_not_of(" \t\n\r");
  if (b == std::string::npos) return "";
  size_t e = s.find_last_not_of(" \t\n\r");
  return s.substr(b, e - b + 1);
}

bool ValidSiteName(const std::string& s) {
  if (s.empty()) return false;
  for (char c : s) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '.' ||
                    c == '-';
    if (!ok) return false;
  }
  return true;
}

bool ParseLong(const std::string& s, long* out) {
  if (s.empty()) return false;
  long v = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return false;
    if (v > (1L << 60)) return false;
    v = v * 10 + (c - '0');
  }
  *out = v;
  return true;
}

/// Parses one trigger expression; `site` only flavours error messages.
bool ParseTrigger(const std::string& site, const std::string& expr,
                  Trigger* t, bool* off, std::string* error) {
  *off = false;
  if (expr == "off") {
    *off = true;
    return true;
  }
  std::string rest = expr;

  // Optional `Nx` fire-count prefix.
  const size_t x = rest.find('x');
  if (x != std::string::npos && x > 0 &&
      rest.find_first_not_of("0123456789") == x) {
    long n = 0;
    if (!ParseLong(rest.substr(0, x), &n) || n < 1) {
      return ParseFail(error, site + ": bad fire count in '" + expr + "'");
    }
    t->max_fires = n;
    rest = rest.substr(x + 1);
  }

  // Optional `@S` start-hit suffix.
  const size_t at = rest.rfind('@');
  if (at != std::string::npos) {
    long s = 0;
    if (!ParseLong(rest.substr(at + 1), &s) || s < 1) {
      return ParseFail(error, site + ": bad start hit in '" + expr + "'");
    }
    t->start_hit = s;
    rest = rest.substr(0, at);
  }

  // Action with optional parenthesized argument.
  std::string action = rest;
  std::string arg;
  const size_t open = rest.find('(');
  if (open != std::string::npos) {
    if (rest.back() != ')') {
      return ParseFail(error, site + ": unbalanced '(' in '" + expr + "'");
    }
    action = rest.substr(0, open);
    arg = rest.substr(open + 1, rest.size() - open - 2);
  }
  if (action == "throw") {
    t->action = Action::kThrow;
    t->message = arg;
  } else if (action == "error") {
    t->action = Action::kError;
    if (!arg.empty()) {
      return ParseFail(error, site + ": 'error' takes no argument");
    }
  } else if (action == "delay") {
    t->action = Action::kDelay;
    char* end = nullptr;
    t->delay_ms = std::strtod(arg.c_str(), &end);
    if (arg.empty() || end == nullptr || *end != '\0' || t->delay_ms < 0) {
      return ParseFail(error,
                       site + ": 'delay' needs a millisecond argument, got '" +
                           arg + "'");
    }
  } else {
    return ParseFail(error, site + ": unknown action '" + action +
                                "' (expected throw|error|delay|off)");
  }
  return true;
}

}  // namespace

namespace internal {

std::atomic<long> g_configured{0};

bool Hit(const char* site) {
  Action action;
  double delay_ms = 0.0;
  std::string message;
  {
    std::lock_guard<std::mutex> lock(Reg().mu);
    auto it = Reg().sites.find(site);
    if (it == Reg().sites.end()) return false;
    Trigger& t = it->second;
    ++t.hits;
    if (t.hits < t.start_hit) return false;
    if (t.max_fires >= 0 && t.fires >= t.max_fires) return false;
    ++t.fires;
    action = t.action;
    delay_ms = t.delay_ms;
    message = t.message;
  }
  // Act outside the lock so a sleeping or throwing trigger never blocks
  // other sites (or this site on other threads).
  switch (action) {
    case Action::kDelay:
      std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
          delay_ms));
      return false;
    case Action::kThrow:
      throw InjectedFault(site,
                          message.empty() ? "injected fault" : message);
    case Action::kError:
      return true;
  }
  return false;
}

}  // namespace internal

bool Configure(const std::string& spec, std::string* error) {
  // Validate every entry before applying any, so a bad spec is atomic.
  std::vector<std::pair<std::string, Trigger>> parsed;
  std::vector<std::string> disarm;
  size_t pos = 0;
  while (pos <= spec.size()) {
    size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string entry = Trim(spec.substr(pos, comma - pos));
    pos = comma + 1;
    if (entry.empty()) continue;
    const size_t eq = entry.find('=');
    if (eq == std::string::npos) {
      return ParseFail(error, "missing '=' in '" + entry + "'");
    }
    const std::string site = Trim(entry.substr(0, eq));
    const std::string expr = Trim(entry.substr(eq + 1));
    if (!ValidSiteName(site)) {
      return ParseFail(error, "bad site name '" + site + "'");
    }
    Trigger t;
    bool off = false;
    if (!ParseTrigger(site, expr, &t, &off, error)) return false;
    if (off) {
      disarm.push_back(site);
    } else {
      parsed.emplace_back(site, t);
    }
  }

  std::lock_guard<std::mutex> lock(Reg().mu);
  for (const std::string& site : disarm) Reg().sites.erase(site);
  for (auto& [site, trigger] : parsed) Reg().sites[site] = trigger;
  internal::g_configured.store(static_cast<long>(Reg().sites.size()),
                               std::memory_order_relaxed);
  return true;
}

bool ConfigureFromEnv(std::string* error) {
  const char* spec = std::getenv("OSD_FAILPOINTS");
  if (spec == nullptr || *spec == '\0') return true;
  return Configure(spec, error);
}

void Clear() {
  std::lock_guard<std::mutex> lock(Reg().mu);
  Reg().sites.clear();
  internal::g_configured.store(0, std::memory_order_relaxed);
}

long HitCount(const std::string& site) {
  std::lock_guard<std::mutex> lock(Reg().mu);
  auto it = Reg().sites.find(site);
  return it == Reg().sites.end() ? 0 : it->second.hits;
}

long FireCount(const std::string& site) {
  std::lock_guard<std::mutex> lock(Reg().mu);
  auto it = Reg().sites.find(site);
  return it == Reg().sites.end() ? 0 : it->second.fires;
}

std::vector<std::string> ArmedSites() {
  std::lock_guard<std::mutex> lock(Reg().mu);
  std::vector<std::string> out;
  out.reserve(Reg().sites.size());
  for (const auto& [site, trigger] : Reg().sites) out.push_back(site);
  return out;
}

}  // namespace osd::failpoint
