// Memory governance: per-query budgets and an engine-wide cap.
//
// The serving stack's large allocations (the best-first frontier heap,
// ObjectProfile distance views, lazy local R-tree builds, P-SD flow
// networks) are *charged* against a budget before the memory is actually
// allocated, so an adversarial query (huge |Q|, pathological instance
// counts) fails its own budget check instead of OOM-killing every
// in-flight query. The design mirrors the tracing layer (obs/trace.h):
//
//  - A per-query QueryBudgetScope is installed into a thread-local slot
//    (RAII) by whoever owns the query execution — the engine's worker
//    around NncSearch::Run, the CLI, or a test. Charge()/Release() reach
//    it through the slot so deep call sites need no plumbed pointer.
//  - With no scope installed (the default), Charge() is one thread-local
//    load and a branch — the accounting layer costs nothing unless a
//    budget was asked for (bench/mem_overhead measures both sides).
//  - An optional engine-wide MemoryBudget sits behind all scopes. Its
//    counters are cache-line-padded shards (same layout as obs metrics);
//    scopes draw from it in kEngineReserveChunk slices so the per-charge
//    hot path stays entirely thread-local.
//
// Charges are *logical* bytes (container size * element size), not
// allocator capacity: the facility is an isolation mechanism with a
// deliberate safety margin, not an exact heap profiler.
//
// Breach semantics: Charge() throws MemoryExceeded, which derives from
// TransientError — a breached query is retry-eligible (an engine-wide
// breach may well succeed once concurrent queries drain). NncSearch::Run
// additionally converts a breach into a certified degraded superset when
// NncOptions::degraded_superset is set; see nnc_search.h.
//
// Thread-safety: MemoryBudget may be shared by any number of threads. A
// QueryBudgetScope belongs to the thread that constructed it; Charge and
// Release act on the calling thread's scope only.

#ifndef OSD_COMMON_MEMORY_BUDGET_H_
#define OSD_COMMON_MEMORY_BUDGET_H_

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <string>

#include "common/failpoint.h"

namespace osd {

/// Thrown by memory::Charge when a charge would exceed the per-query or
/// engine-wide budget. Transient by contract: the engine's RetryPolicy may
/// retry it (an engine-wide breach can clear as other queries finish).
class MemoryExceeded : public TransientError {
 public:
  MemoryExceeded(const char* what_label, long requested_bytes,
                 long charged_bytes, long limit_bytes, bool engine_wide);

  long requested_bytes() const { return requested_; }
  long charged_bytes() const { return charged_; }
  long limit_bytes() const { return limit_; }
  /// True when the engine-wide cap (not the per-query cap) refused it.
  bool engine_wide() const { return engine_wide_; }

 private:
  long requested_;
  long charged_;
  long limit_;
  bool engine_wide_;
};

namespace memory {

/// Engine-wide memory accounting with cache-line-padded shards. cap_bytes
/// <= 0 means "track but never refuse" (the gauges stay meaningful).
class MemoryBudget {
 public:
  static constexpr int kShards = 16;

  explicit MemoryBudget(long cap_bytes = 0) : cap_(cap_bytes) {}
  MemoryBudget(const MemoryBudget&) = delete;
  MemoryBudget& operator=(const MemoryBudget&) = delete;

  /// Charges `bytes` if the cap allows it; on refusal nothing is charged,
  /// the breach counter increments, and false is returned. Charges are
  /// expected to be coarse (scopes reserve in kEngineReserveChunk slices),
  /// so the full-shard sum per call is off any per-allocation path.
  bool TryCharge(long bytes);

  /// Returns previously charged bytes and wakes WaitUntilBelow sleepers.
  void Release(long bytes);

  /// Blocks until current_bytes() <= level_bytes (high-water backpressure
  /// for admission control). Returns immediately when already below.
  void WaitUntilBelow(long level_bytes) const;

  long current_bytes() const;
  long peak_bytes() const { return peak_.load(std::memory_order_relaxed); }
  long cap_bytes() const { return cap_; }
  /// Times TryCharge refused a charge.
  long breaches() const { return breaches_.load(std::memory_order_relaxed); }

 private:
  struct alignas(64) Shard {
    std::atomic<long> bytes{0};
  };

  Shard shards_[kShards];
  long cap_;
  std::atomic<long> peak_{0};
  std::atomic<long> breaches_{0};
  mutable std::mutex wait_mu_;
  mutable std::condition_variable wait_cv_;
};

/// Engine-budget slice a scope reserves per refill, keeping the per-charge
/// hot path free of shared-counter traffic.
inline constexpr long kEngineReserveChunk = 1L << 20;

/// One query's budget scope. Constructing installs it as the calling
/// thread's current scope (stacking over any enclosing scope); destruction
/// restores the previous scope and returns the engine reservation.
/// per_query_cap_bytes <= 0 disables the per-query cap (the scope still
/// tracks peak usage and still draws on the engine budget, if any).
class QueryBudgetScope {
 public:
  QueryBudgetScope(long per_query_cap_bytes, MemoryBudget* engine_budget);
  ~QueryBudgetScope();
  QueryBudgetScope(const QueryBudgetScope&) = delete;
  QueryBudgetScope& operator=(const QueryBudgetScope&) = delete;

  long cap_bytes() const { return cap_; }
  long charged_bytes() const { return charged_; }
  long peak_bytes() const { return peak_; }
  /// Charges this scope refused (each one threw MemoryExceeded).
  long breaches() const { return breaches_; }

 private:
  friend void Charge(long bytes, const char* what_label);
  friend void Release(long bytes);

  long cap_;
  MemoryBudget* engine_;
  QueryBudgetScope* prev_;
  long charged_ = 0;
  long peak_ = 0;
  long reserved_ = 0;  // engine-budget bytes held by this scope
  long breaches_ = 0;
};

namespace internal {
/// The thread's active scope slot; same function-local thread_local idiom
/// as obs::internal::CurrentTraceSlot (cheap cross-TU TLS access).
inline QueryBudgetScope*& CurrentScopeSlot() {
  thread_local QueryBudgetScope* slot = nullptr;
  return slot;
}
}  // namespace internal

/// The calling thread's active scope, or null when memory accounting is
/// off for this execution.
inline QueryBudgetScope* CurrentScope() {
  return internal::CurrentScopeSlot();
}

/// Charges `bytes` against the calling thread's scope, drawing on the
/// engine budget as needed; throws MemoryExceeded on breach (nothing is
/// charged then). A no-op without an installed scope or when bytes <= 0.
/// `what_label` flavours the exception message ("profile.matrix", ...).
/// Also attributes the bytes to the thread's current trace span.
/// Failpoint site: "mem.charge" (fires only under an installed scope).
void Charge(long bytes, const char* what_label = "");

/// Returns previously charged bytes to the scope. Tolerates releases that
/// exceed the charged amount (clamped at zero) so objects whose lifetime
/// straddles scope boundaries cannot corrupt the accounting.
void Release(long bytes);

/// RAII accumulator for charges whose owning container dies with the
/// enclosing block (frontier heap, result staging, flow networks):
/// everything Add()ed is released on destruction.
class ScopedCharge {
 public:
  explicit ScopedCharge(const char* what_label = "") : what_(what_label) {}
  ScopedCharge(const ScopedCharge&) = delete;
  ScopedCharge& operator=(const ScopedCharge&) = delete;
  ~ScopedCharge() { Release(held_); }

  /// Charges `bytes` more (may throw MemoryExceeded; held() unchanged
  /// then).
  void Add(long bytes) {
    Charge(bytes, what_);
    if (bytes > 0) held_ += bytes;
  }
  /// Returns up to `bytes` of the held charge early.
  void Sub(long bytes) {
    if (bytes > held_) bytes = held_;
    if (bytes <= 0) return;
    Release(bytes);
    held_ -= bytes;
  }
  long held() const { return held_; }

 private:
  const char* what_;
  long held_ = 0;
};

}  // namespace memory
}  // namespace osd

#endif  // OSD_COMMON_MEMORY_BUDGET_H_
