// Thread-local cooperative interrupt points for long-running kernels.
//
// The traversal loop in core/nnc_search.cc polls its QueryControl at heap
// pops, but the heavy inner machinery — Dinic max-flow runs on dense
// possible-world instances, CDF-envelope refinement rounds — can spend the
// whole deadline inside a single pop. Those layers sit *below* core in the
// dependency order (core -> nnfun -> flow), so they cannot see QueryControl
// directly. This header gives them a dependency-free poll point:
//
//   NncSearch::Run installs an interrupt::Scope on its thread (same RAII
//   idiom as OSD_TRACE_INSTALL and memory::QueryBudgetScope), mirroring the
//   query's cancel flag and deadline. Deep call sites sprinkle
//   interrupt::Poll() into their loops; when the deadline passes or the
//   cancel flag is set, Poll throws interrupt::Interrupted, which
//   NncSearch::Run catches at its per-item containment boundary and turns
//   into the usual kDeadlineExceeded / kCancelled termination (re-pushing
//   the in-flight item so degraded supersets stay certified).
//
// Poll is one thread-local pointer load when no scope is installed, and one
// relaxed atomic load per call plus a steady_clock read every
// kDeadlineStride calls when one is. It never blocks and never allocates.

#ifndef OSD_COMMON_INTERRUPT_H_
#define OSD_COMMON_INTERRUPT_H_

#include <atomic>
#include <chrono>
#include <exception>

namespace osd {
namespace interrupt {

/// Why Poll() threw.
enum class Kind {
  kCancelled,         ///< the scope's cancel flag was set
  kDeadlineExceeded,  ///< the scope's deadline passed
};

/// Thrown by Poll() when the installed scope's cancel flag is set or its
/// deadline has passed. Deliberately NOT derived from TransientError: an
/// expired deadline must never be retried by the engine.
class Interrupted : public std::exception {
 public:
  explicit Interrupted(Kind kind) : kind_(kind) {}
  Kind kind() const { return kind_; }
  const char* what() const noexcept override {
    return kind_ == Kind::kCancelled ? "query cancelled"
                                     : "query deadline exceeded";
  }

 private:
  Kind kind_;
};

class Scope;

namespace internal {
extern thread_local Scope* g_scope;
void PollSlow(Scope* scope);
}  // namespace internal

/// RAII installation of one query's cancel flag + deadline as the calling
/// thread's interrupt source. Nested scopes shadow (innermost wins) and
/// restore on destruction. A scope with a null cancel pointer and no
/// deadline installs nothing, so Poll stays on its one-load fast path.
class Scope {
 public:
  Scope(const std::atomic<bool>* cancel,
        std::chrono::steady_clock::time_point deadline)
      : cancel_(cancel),
        deadline_(deadline),
        has_deadline_(deadline !=
                      std::chrono::steady_clock::time_point::max()) {
    if (cancel_ != nullptr || has_deadline_) {
      prev_ = internal::g_scope;
      internal::g_scope = this;
      installed_ = true;
    }
  }
  ~Scope() {
    if (installed_) internal::g_scope = prev_;
  }
  Scope(const Scope&) = delete;
  Scope& operator=(const Scope&) = delete;

 private:
  friend void internal::PollSlow(Scope*);

  /// Polls between steady_clock reads for the deadline check; the first
  /// poll always reads the clock, so an already-expired deadline fires
  /// before any kernel work.
  static constexpr long kDeadlineStride = 32;

  const std::atomic<bool>* cancel_;
  std::chrono::steady_clock::time_point deadline_;
  bool has_deadline_;
  bool installed_ = false;
  long polls_ = 0;
  Scope* prev_ = nullptr;
};

/// Cooperative interrupt point. Cheap enough for inner loops; throws
/// Interrupted when the installed scope (if any) says the query is done.
inline void Poll() {
  if (internal::g_scope != nullptr) internal::PollSlow(internal::g_scope);
}

/// True when the calling thread has an active interrupt scope.
inline bool Active() { return internal::g_scope != nullptr; }

}  // namespace interrupt
}  // namespace osd

#endif  // OSD_COMMON_INTERRUPT_H_
