#include "common/memory_budget.h"

#include <cstdio>

#include "obs/trace.h"

namespace osd {

namespace {

std::string BreachMessage(const char* what_label, long requested_bytes,
                          long charged_bytes, long limit_bytes,
                          bool engine_wide) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "memory budget exceeded: charge of %ld bytes%s%s would pass "
                "the %s cap of %ld bytes (%ld already charged)",
                requested_bytes,
                (what_label != nullptr && *what_label != '\0') ? " for " : "",
                (what_label != nullptr && *what_label != '\0') ? what_label
                                                               : "",
                engine_wide ? "engine-wide" : "per-query", limit_bytes,
                charged_bytes);
  return buf;
}

}  // namespace

MemoryExceeded::MemoryExceeded(const char* what_label, long requested_bytes,
                               long charged_bytes, long limit_bytes,
                               bool engine_wide)
    : TransientError(BreachMessage(what_label, requested_bytes, charged_bytes,
                                   limit_bytes, engine_wide)),
      requested_(requested_bytes),
      charged_(charged_bytes),
      limit_(limit_bytes),
      engine_wide_(engine_wide) {}

namespace memory {

namespace {

/// Round-robin shard assignment per thread, cached in a thread_local (same
/// scheme as obs::internal::ThisShard).
int ThisShard() {
  static std::atomic<unsigned> next{0};
  thread_local int shard = static_cast<int>(
      next.fetch_add(1, std::memory_order_relaxed) % MemoryBudget::kShards);
  return shard;
}

}  // namespace

bool MemoryBudget::TryCharge(long bytes) {
  if (bytes <= 0) return true;
  std::atomic<long>& mine = shards_[ThisShard()].bytes;
  mine.fetch_add(bytes, std::memory_order_relaxed);
  const long current = current_bytes();
  if (cap_ > 0 && current > cap_) {
    mine.fetch_sub(bytes, std::memory_order_relaxed);
    breaches_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  // Peak is a monotone max; races only ever lose a transiently-lower value.
  long peak = peak_.load(std::memory_order_relaxed);
  while (current > peak &&
         !peak_.compare_exchange_weak(peak, current,
                                      std::memory_order_relaxed)) {
  }
  return true;
}

void MemoryBudget::Release(long bytes) {
  if (bytes <= 0) return;
  shards_[ThisShard()].bytes.fetch_sub(bytes, std::memory_order_relaxed);
  // Releases are scope-granular (cold), so an unconditional wakeup is
  // cheaper to reason about than a waiter-count handshake.
  {
    std::lock_guard<std::mutex> lock(wait_mu_);
  }
  wait_cv_.notify_all();
}

void MemoryBudget::WaitUntilBelow(long level_bytes) const {
  std::unique_lock<std::mutex> lock(wait_mu_);
  wait_cv_.wait(lock, [&] { return current_bytes() <= level_bytes; });
}

long MemoryBudget::current_bytes() const {
  long total = 0;
  for (const Shard& s : shards_) {
    total += s.bytes.load(std::memory_order_relaxed);
  }
  // Concurrent add/sub pairs can transiently undershoot a sum taken
  // mid-flight; clamp so callers never see a negative gauge.
  return total < 0 ? 0 : total;
}

QueryBudgetScope::QueryBudgetScope(long per_query_cap_bytes,
                                   MemoryBudget* engine_budget)
    : cap_(per_query_cap_bytes),
      engine_(engine_budget),
      prev_(internal::CurrentScopeSlot()) {
  internal::CurrentScopeSlot() = this;
}

QueryBudgetScope::~QueryBudgetScope() {
  internal::CurrentScopeSlot() = prev_;
  if (engine_ != nullptr && reserved_ > 0) engine_->Release(reserved_);
}

void Charge(long bytes, const char* what_label) {
  if (bytes <= 0) return;
  QueryBudgetScope* scope = internal::CurrentScopeSlot();
  if (scope == nullptr) return;
  OSD_FAILPOINT("mem.charge");
  const long next = scope->charged_ + bytes;
  if (scope->cap_ > 0 && next > scope->cap_) {
    ++scope->breaches_;
    throw MemoryExceeded(what_label, bytes, scope->charged_, scope->cap_,
                         /*engine_wide=*/false);
  }
  if (scope->engine_ != nullptr && next > scope->reserved_) {
    const long need = next - scope->reserved_;
    const long chunk = need > kEngineReserveChunk ? need : kEngineReserveChunk;
    if (scope->engine_->TryCharge(chunk)) {
      scope->reserved_ += chunk;
    } else if (chunk != need && scope->engine_->TryCharge(need)) {
      // Near the engine cap a full chunk no longer fits; take exactly what
      // this charge needs so queries degrade one by one, not all at once.
      scope->reserved_ += need;
    } else {
      ++scope->breaches_;
      throw MemoryExceeded(what_label, bytes, scope->charged_,
                           scope->engine_->cap_bytes(), /*engine_wide=*/true);
    }
  }
  scope->charged_ = next;
  if (next > scope->peak_) scope->peak_ = next;
#if defined(OSD_TRACING_ENABLED)
  if (obs::Trace* trace = obs::CurrentTrace()) trace->AddBytes(bytes);
#endif
}

void Release(long bytes) {
  if (bytes <= 0) return;
  QueryBudgetScope* scope = internal::CurrentScopeSlot();
  if (scope == nullptr) return;
  scope->charged_ -= bytes;
  if (scope->charged_ < 0) scope->charged_ = 0;
  // The engine reservation is returned wholesale at scope destruction;
  // giving back partial chunks mid-query would put shared-counter traffic
  // back on the release path for no isolation benefit.
}

}  // namespace memory
}  // namespace osd
