#!/usr/bin/env bash
# Builds the project with ThreadSanitizer and runs the engine concurrency
# suite (the tests labeled `tsan`). Zero reported races is a merge gate for
# changes touching src/engine/ or the shared lazy caches in src/object/.
#
# Usage: scripts/check_tsan.sh [build-dir]   (default: build-tsan)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build-tsan}"

# Failpoints are compiled in so the resilience suite can inject faults
# into concurrent executions (retry storms are where races would hide).
cmake -B "$BUILD_DIR" -S . \
  -DOSD_SANITIZE=thread \
  -DOSD_FAILPOINTS=ON \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$BUILD_DIR" -j"$(nproc)" \
  --target engine_test engine_concurrency_test engine_resilience_test \
  obs_test mem_budget_test kernels_test net_hardening_test \
  net_server_test versioned_dataset_test durability_test \
  shared_cache_test

# halt_on_error makes a detected race fail the test run rather than just
# printing a report.
TSAN_OPTIONS="halt_on_error=1 second_deadlock_stack=1" \
  ctest --test-dir "$BUILD_DIR" -L tsan --output-on-failure

echo "check_tsan: OK (no data races reported)"
