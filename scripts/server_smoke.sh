#!/usr/bin/env bash
# End-to-end smoke of the service tier: starts a real osd_server on an
# ephemeral loopback port, drives it with concurrent osd_cli query
# clients (a plain query, a mid-flight cancel, a deadline-degraded run),
# then SIGTERMs the server mid-flight and asserts a clean drain — every
# in-flight ticket finished, summary printed, exit code 0. A durability
# leg then runs a --wal-dir server through an acked write, a sealed
# SIGTERM shutdown, and a restart that must recover the write; wal-dump
# and checkpoint-info must accept the surviving directory. Finishes with
# a quick osd_chaos soak (adversarial clients + failpoint storms + drain
# cycles, all resilience invariants asserted) and a short SIGKILL
# crash-recovery soak (scripts/check_crash.sh runs the long one).
#
# Usage: scripts/server_smoke.sh [build-dir]   (default: build)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
SERVER="$BUILD_DIR/tools/osd_server"
CLI="$BUILD_DIR/tools/osd_cli"
CHAOS="$BUILD_DIR/tools/osd_chaos"

cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build "$BUILD_DIR" -j"$(nproc)" --target osd_server osd_cli osd_chaos

TMP="$(mktemp -d)"
SERVER_PID=""
cleanup() {
  [[ -n "$SERVER_PID" ]] && kill -9 "$SERVER_PID" 2>/dev/null || true
  rm -rf "$TMP"
}
trap cleanup EXIT

"$SERVER" --gen-data 1000 --gen-dim 2 --port 0 --threads 2 \
  >"$TMP/server.out" 2>"$TMP/server.err" &
SERVER_PID=$!

# The server prints one machine-readable line once the listener is live.
PORT=""
for _ in $(seq 1 100); do
  PORT="$(sed -n 's/^listening on [^:]*:\([0-9]*\)$/\1/p' "$TMP/server.out")"
  [[ -n "$PORT" ]] && break
  kill -0 "$SERVER_PID" 2>/dev/null || {
    echo "FAIL: server died during startup"; cat "$TMP/server.err"; exit 1; }
  sleep 0.1
done
[[ -n "$PORT" ]] || { echo "FAIL: no listening line"; exit 1; }
echo "server up on port $PORT"

# Three concurrent clients: a plain streamed query, a mid-flight cancel,
# and a tight deadline with --accept-degraded.
"$CLI" query --port "$PORT" --query-id 5 --op psd \
  >"$TMP/plain.out" 2>&1 &
PLAIN=$!
"$CLI" query --port "$PORT" --query-id 17 --op fsd --k 3 \
  --cancel-after-ms 5 >"$TMP/cancel.out" 2>&1 &
CANCEL=$!
"$CLI" query --port "$PORT" --query-id 42 --op fsd --k 2 \
  --deadline-ms 2 --accept-degraded >"$TMP/degraded.out" 2>&1 &
DEGRADED=$!

wait "$PLAIN" || { echo "FAIL: plain query client failed"
                   cat "$TMP/plain.out"; exit 1; }
grep -q '"type":"candidate"' "$TMP/plain.out" \
  || { echo "FAIL: no progressive frame"; cat "$TMP/plain.out"; exit 1; }
grep -q '"status":"OK"' "$TMP/plain.out" \
  || { echo "FAIL: plain query not OK"; cat "$TMP/plain.out"; exit 1; }

# The cancel and deadline clients race real execution: any consistent
# terminal frame is correct, hanging or crashing is not.
wait "$CANCEL" || true
grep -q '"type":"result"' "$TMP/cancel.out" \
  || { echo "FAIL: cancel client got no terminal frame"
       cat "$TMP/cancel.out"; exit 1; }
wait "$DEGRADED" || true
grep -q '"type":"result"' "$TMP/degraded.out" \
  || { echo "FAIL: degraded client got no terminal frame"
       cat "$TMP/degraded.out"; exit 1; }
echo "concurrent clients OK"

# SIGTERM with a query in flight: the drain must finish the ticket, the
# client must still get its terminal frame, and the server must exit 0.
"$CLI" query --port "$PORT" --query-id 0 --op fsd --k 8 \
  >"$TMP/inflight.out" 2>&1 &
INFLIGHT=$!
sleep 0.05
kill -TERM "$SERVER_PID"
SERVER_RC=0
wait "$SERVER_PID" || SERVER_RC=$?
SERVER_PID=""
[[ "$SERVER_RC" -eq 0 ]] \
  || { echo "FAIL: server exited $SERVER_RC"; cat "$TMP/server.err"; exit 1; }
grep -q 'drained;' "$TMP/server.err" \
  || { echo "FAIL: no drain summary"; cat "$TMP/server.err"; exit 1; }
grep -q '0 in flight' "$TMP/server.err" \
  || { echo "FAIL: drain left tickets in flight"
       cat "$TMP/server.err"; exit 1; }
wait "$INFLIGHT" || true
grep -q '"type":"result"' "$TMP/inflight.out" \
  || { echo "FAIL: in-flight client lost its terminal frame on drain"
       cat "$TMP/inflight.out"; exit 1; }
echo "drain OK: $(grep 'drained;' "$TMP/server.err")"

# Durability: a --wal-dir server must make an acked write durable, seal
# its log on SIGTERM, and serve the write again after a restart.
WAL_DIR="$TMP/wal"
"$SERVER" --gen-data 100 --gen-dim 2 --wal-dir "$WAL_DIR" --port 0 \
  --threads 2 >"$TMP/dur1.out" 2>"$TMP/dur1.err" &
SERVER_PID=$!
PORT=""
for _ in $(seq 1 100); do
  PORT="$(sed -n 's/^listening on [^:]*:\([0-9]*\)$/\1/p' "$TMP/dur1.out")"
  [[ -n "$PORT" ]] && break
  kill -0 "$SERVER_PID" 2>/dev/null || {
    echo "FAIL: durable server died during startup"
    cat "$TMP/dur1.err"; exit 1; }
  sleep 0.1
done
[[ -n "$PORT" ]] || { echo "FAIL: no listening line (durable)"; exit 1; }

"$CLI" mutate --port "$PORT" \
  --insert '9000:0.31,0.62,2;0.33,0.64,1' >"$TMP/mutate.out" 2>&1 \
  || { echo "FAIL: mutate client failed"; cat "$TMP/mutate.out"; exit 1; }
grep -q '"seq":1' "$TMP/mutate.out" \
  || { echo "FAIL: mutate_ok carries no durable seq"
       cat "$TMP/mutate.out"; exit 1; }

kill -TERM "$SERVER_PID"
SERVER_RC=0
wait "$SERVER_PID" || SERVER_RC=$?
SERVER_PID=""
[[ "$SERVER_RC" -eq 0 ]] \
  || { echo "FAIL: durable server exited $SERVER_RC"
       cat "$TMP/dur1.err"; exit 1; }
grep -q 'WAL sealed at seq 1' "$TMP/dur1.err" \
  || { echo "FAIL: shutdown did not seal the WAL"
       cat "$TMP/dur1.err"; exit 1; }

# Offline inspection of the sealed directory: the acked batch must be
# visible in the log and every checkpoint must load cleanly.
"$CLI" wal-dump "$WAL_DIR" >"$TMP/waldump.out" \
  || { echo "FAIL: wal-dump rejected a sealed log"
       cat "$TMP/waldump.out"; exit 1; }
grep -q '"kind":"batch"' "$TMP/waldump.out" \
  || { echo "FAIL: acked batch missing from wal-dump"
       cat "$TMP/waldump.out"; exit 1; }
"$CLI" checkpoint-info "$WAL_DIR" >/dev/null \
  || { echo "FAIL: checkpoint-info"; exit 1; }

# Restart from the directory alone: the 100 generated objects plus the
# inserted one must come back, and the inserted object must be queryable.
"$SERVER" --wal-dir "$WAL_DIR" --port 0 --threads 2 \
  >"$TMP/dur2.out" 2>"$TMP/dur2.err" &
SERVER_PID=$!
PORT=""
for _ in $(seq 1 100); do
  PORT="$(sed -n 's/^listening on [^:]*:\([0-9]*\)$/\1/p' "$TMP/dur2.out")"
  [[ -n "$PORT" ]] && break
  kill -0 "$SERVER_PID" 2>/dev/null || {
    echo "FAIL: restarted server died during recovery"
    cat "$TMP/dur2.err"; exit 1; }
  sleep 0.1
done
[[ -n "$PORT" ]] || { echo "FAIL: no listening line (restart)"; exit 1; }
grep -q 'recovered 101 object(s) at seq 1' "$TMP/dur2.err" \
  || { echo "FAIL: restart did not recover 100 generated + 1 inserted"
       cat "$TMP/dur2.err"; exit 1; }
grep -q ', clean shutdown' "$TMP/dur2.err" \
  || { echo "FAIL: restart did not report a clean-shutdown recovery"
       cat "$TMP/dur2.err"; exit 1; }
"$CLI" query --port "$PORT" --query-id 9000 --op psd >"$TMP/recq.out" 2>&1 \
  || { echo "FAIL: query against recovered object failed"
       cat "$TMP/recq.out"; exit 1; }
grep -q '"status":"OK"' "$TMP/recq.out" \
  || { echo "FAIL: recovered object not queryable"
       cat "$TMP/recq.out"; exit 1; }
kill -TERM "$SERVER_PID"
SERVER_RC=0
wait "$SERVER_PID" || SERVER_RC=$?
SERVER_PID=""
[[ "$SERVER_RC" -eq 0 ]] \
  || { echo "FAIL: restarted server exited $SERVER_RC"
       cat "$TMP/dur2.err"; exit 1; }
echo "durability OK: acked write survived seal + restart"

# Quick chaos soak: in-process server under hostile clients, failpoint
# storms and SIGTERM cycles; fails on any resilience-invariant violation.
"$CHAOS" --quick \
  || { echo "FAIL: chaos soak"; exit 1; }

# Short crash-recovery soak: forked --wal-dir servers SIGKILLed mid-storm,
# every acked write verified after each restart. The 20-cycle version is
# scripts/check_crash.sh (nightly CI).
"$CHAOS" --crash-cycles 4 --wal-dir "$TMP/crash" \
  || { echo "FAIL: crash soak"; exit 1; }
echo "PASS: server smoke"
