#!/usr/bin/env bash
# Builds the project with AddressSanitizer + UndefinedBehaviorSanitizer and
# runs the robustness suites (the tests labeled `asan`): fault injection,
# hostile-input ingestion, and degraded-mode correctness. A clean run is a
# merge gate for changes touching src/io/, src/common/failpoint.*, or the
# engine's failure paths.
#
# A second, failpoints-OFF build then re-runs the `failpoint` suite to
# prove the injection sites compile out completely inert (armed triggers
# must change nothing when the sites are absent).
#
# Usage: scripts/check_asan.sh [build-dir]   (default: build-asan)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build-asan}"
TARGETS="failpoint_test io_hardening_test io_test degraded_mode_test \
  engine_resilience_test obs_test mem_budget_test kernels_test \
  net_protocol_test net_hardening_test net_server_test \
  versioned_dataset_test durability_test shared_cache_test"

cmake -B "$BUILD_DIR" -S . \
  -DOSD_SANITIZE=address \
  -DOSD_FAILPOINTS=ON \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo
# shellcheck disable=SC2086
cmake --build "$BUILD_DIR" -j"$(nproc)" --target $TARGETS

# halt_on_error fails the run on the first report instead of continuing.
ASAN_OPTIONS="halt_on_error=1 detect_leaks=1" \
UBSAN_OPTIONS="halt_on_error=1 print_stacktrace=1" \
  ctest --test-dir "$BUILD_DIR" -L asan --output-on-failure

cmake -B "$BUILD_DIR-off" -S . \
  -DOSD_SANITIZE=address \
  -DOSD_FAILPOINTS=OFF \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$BUILD_DIR-off" -j"$(nproc)" \
  --target failpoint_test engine_resilience_test mem_budget_test \
  net_server_test durability_test
ASAN_OPTIONS="halt_on_error=1 detect_leaks=1" \
UBSAN_OPTIONS="halt_on_error=1 print_stacktrace=1" \
  ctest --test-dir "$BUILD_DIR-off" -L failpoint --output-on-failure

echo "check_asan: OK (ASan/UBSan clean; failpoint sites inert when OFF)"
