#!/usr/bin/env bash
# Crash-recovery soak: builds osd_chaos with AddressSanitizer + failpoints
# and runs the crash persona — repeated SIGKILL/restart cycles against a
# real forked osd_server child writing through the WAL tier. After every
# kill the parent recovers the directory offline and asserts the invariant
# that makes `mutate_ok` mean something: every acknowledged write survives
# exactly (coordinates and probabilities bit-compared against a replay
# model), no batch is ever half-applied, and unacknowledged batches appear
# either fully or not at all. The final cycle exits via SIGTERM and must
# leave a cleanly sealed log that offline inspection (osd_cli wal-dump /
# checkpoint-info) also accepts.
#
# A clean run is the merge gate for changes touching src/io/ or the
# publish/append ordering in src/object/versioned_dataset.*.
#
# Usage: scripts/check_crash.sh [build-dir] [cycles]
#        (defaults: build-crash, 20 cycles)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build-crash}"
CYCLES="${2:-20}"

cmake -B "$BUILD_DIR" -S . \
  -DOSD_SANITIZE=address \
  -DOSD_FAILPOINTS=ON \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$BUILD_DIR" -j"$(nproc)" --target osd_chaos osd_cli

WAL_DIR="$(mktemp -d)"
cleanup() { rm -rf "$WAL_DIR"; }
trap cleanup EXIT

# halt_on_error fails the run on the first report; leak detection only
# runs in processes that exit normally (the parent and the final child),
# which is exactly right — SIGKILLed children cannot leak-check.
ASAN_OPTIONS="halt_on_error=1 detect_leaks=1" \
UBSAN_OPTIONS="halt_on_error=1 print_stacktrace=1" \
  "$BUILD_DIR/tools/osd_chaos" --crash-cycles "$CYCLES" --wal-dir "$WAL_DIR"

# The surviving directory must pass offline inspection: every WAL segment
# scans clean (exit 0 requires no torn/corrupt segment) and every
# checkpoint loads with a matching checksum.
"$BUILD_DIR/tools/osd_cli" wal-dump "$WAL_DIR" >/dev/null
"$BUILD_DIR/tools/osd_cli" checkpoint-info "$WAL_DIR" >/dev/null

echo "check_crash: OK ($CYCLES kill/restart cycles, zero acked-write loss)"
