#!/usr/bin/env bash
# Builds the benchmarks in Release mode, runs the kernel-sensitive suite
# (micro_dominance, micro_substrates, fig12_time_datasets), and writes
# BENCH_kernels.json at the repo root: raw numbers plus kernel-vs-scalar
# speedups, stamped with machine and commit metadata.
#
# The scalar baseline comes from the same binaries — micro_dominance has
# in-binary *_scalar captures, and fig12 is re-run with
# OSD_SCALAR_KERNELS=1 — so the comparison isolates the kernel substrate
# from everything else.
#
# The service tier gets its own pass: server_throughput pushes queries
# through a real OsdServer on loopback and writes BENCH_server.json
# (QPS, latency percentiles, time-to-first-candidate per concurrency).
#
# The epoch-snapshot store gets a third pass: dynamic_throughput measures
# read QPS/latency under concurrent write rates plus Fold() latency vs.
# delta size, and writes BENCH_dynamic.json.
#
# The cross-query sharing layers get a fourth pass: shared_workload runs a
# Zipf-skewed multi-client closed loop with the profile cache + batching
# off, then on, and writes BENCH_shared.json (aggregate QPS, latency
# percentiles, speedup at the unshared round's p99 SLO, cache hit rate).
#
# Usage: scripts/run_benches.sh [build-dir]   (default: build-bench)
# Env:   OSD_BENCH_MIN_TIME    google-benchmark min seconds/case (default 0.1)
#        OSD_BENCH_FIG12_REPS  fig12 repetitions per mode (default 3); the
#                              JSON records the per-cell minimum, which is
#                              the noise-robust estimator for end-to-end
#                              runs on a shared machine
#        OSD_BENCH_SERVER_QUERIES  queries per server_throughput round
#                              (default 128)
#        OSD_BENCH_SERVER_CLIENTS  client concurrencies (default 1,2,4)
#        OSD_BENCH_DYNAMIC_SECONDS seconds per dynamic_throughput round
#                              (default 1.5)
#        OSD_BENCH_DYNAMIC_RATES   write rates in ops/s (default 0,500,5000)
#        OSD_BENCH_SHARED_SECONDS  seconds per shared_workload round
#                              (default 2.0)
#        OSD_BENCH_SHARED_CLIENTS  shared_workload client threads (default 8)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build-bench}"
export MIN_TIME="${OSD_BENCH_MIN_TIME:-0.1}"
export FIG12_REPS="${OSD_BENCH_FIG12_REPS:-3}"
OUT=BENCH_kernels.json
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release
cmake --build "$BUILD_DIR" -j"$(nproc)" \
  --target micro_dominance micro_substrates fig12_time_datasets \
           server_throughput dynamic_throughput shared_workload

echo "== server_throughput (service tier -> BENCH_server.json) =="
"$BUILD_DIR/bench/server_throughput" \
  --queries "${OSD_BENCH_SERVER_QUERIES:-128}" \
  --clients "${OSD_BENCH_SERVER_CLIENTS:-1,2,4}" \
  --out BENCH_server.json

echo "== dynamic_throughput (epoch store -> BENCH_dynamic.json) =="
"$BUILD_DIR/bench/dynamic_throughput" \
  --seconds "${OSD_BENCH_DYNAMIC_SECONDS:-1.5}" \
  --write-rates "${OSD_BENCH_DYNAMIC_RATES:-0,500,5000}" \
  --out BENCH_dynamic.json

echo "== shared_workload (cross-query sharing -> BENCH_shared.json) =="
"$BUILD_DIR/bench/shared_workload" \
  --seconds "${OSD_BENCH_SHARED_SECONDS:-2.0}" \
  --clients "${OSD_BENCH_SHARED_CLIENTS:-8}" \
  --out BENCH_shared.json

echo "== micro_dominance (kernel + scalar captures) =="
"$BUILD_DIR/bench/micro_dominance" \
  --benchmark_min_time="$MIN_TIME" \
  --benchmark_format=json >"$TMP/micro_dominance.json"

echo "== micro_substrates =="
"$BUILD_DIR/bench/micro_substrates" \
  --benchmark_min_time="$MIN_TIME" \
  --benchmark_format=json >"$TMP/micro_substrates.json"

# Modes interleave so slow machine-state drift hits both equally.
for r in $(seq 1 "$FIG12_REPS"); do
  echo "== fig12_time_datasets (kernels, rep $r/$FIG12_REPS) =="
  "$BUILD_DIR/bench/fig12_time_datasets" | tee "$TMP/fig12_kernels.$r.txt"
  echo "== fig12_time_datasets (scalar fallback, rep $r/$FIG12_REPS) =="
  OSD_SCALAR_KERNELS=1 "$BUILD_DIR/bench/fig12_time_datasets" \
    | tee "$TMP/fig12_scalar.$r.txt"
done

python3 - "$TMP" "$OUT" <<'PY'
import glob, json, re, subprocess, sys

tmp, out = sys.argv[1], sys.argv[2]

def sh(cmd):
    return subprocess.run(cmd, shell=True, capture_output=True,
                          text=True).stdout.strip()

def load_gbench(path):
    with open(path) as f:
        doc = json.load(f)
    return [{"name": b["name"],
             "real_time_ns": round(b["real_time"], 1),
             "cpu_time_ns": round(b["cpu_time"], 1)}
            for b in doc.get("benchmarks", [])
            if b.get("run_type", "iteration") == "iteration"]

def parse_fig12(path):
    """'dataset  SSD  SSSD  PSD  FSD  F+SD' table -> {dataset: {op: ms}}."""
    rows, ops = {}, None
    for line in open(path):
        parts = line.split()
        if not parts:
            continue
        if parts[0] == "dataset":
            ops = parts[1:]
            continue
        if ops and len(parts) == len(ops) + 1:
            try:
                vals = [float(v) for v in parts[1:]]
            except ValueError:
                continue
            rows[parts[0]] = dict(zip(ops, vals))
    return rows

micro_dom = load_gbench(f"{tmp}/micro_dominance.json")
micro_sub = load_gbench(f"{tmp}/micro_substrates.json")

# Kernel speedup per instance count: scalar time / kernel time for the
# matrix-materialization and fused-stats cases.
def speedups(prefix):
    t = {}
    for b in micro_dom:
        m = re.match(rf"{prefix}/(matrix|stats)_(kernels|scalar)/(\d+)$",
                     b["name"])
        if m:
            t[(m.group(2), m.group(3))] = b["real_time_ns"]
    return {n: round(t[("scalar", n)] / t[("kernels", n)], 2)
            for (mode, n) in sorted(t, key=lambda k: int(k[1]))
            if mode == "scalar" and ("kernels", n) in t}

def min_over_reps(mode):
    merged = {}
    for path in sorted(glob.glob(f"{tmp}/fig12_{mode}.*.txt")):
        for ds, row in parse_fig12(path).items():
            cell = merged.setdefault(ds, {})
            for op, ms in row.items():
                cell[op] = min(ms, cell.get(op, ms))
    return merged

fig_kern = min_over_reps("kernels")
fig_scal = min_over_reps("scalar")

# Regression = kernels slower than scalar. Positive pct means the kernel
# path lost time on that (dataset, operator) cell. The fig12 table prints
# whole tenths of a millisecond, so cells under RES_FLOOR_MS are below
# measurement resolution (0.1 ms on a 0.5 ms cell is already 20%) and are
# recorded but excluded from the worst-regression statistic.
RES_FLOOR_MS = 5.0
worst = {"pct": None, "cell": None}
fig_ratio = {}
for ds, row in fig_kern.items():
    fig_ratio[ds] = {}
    for op, kern_ms in row.items():
        scal_ms = fig_scal.get(ds, {}).get(op)
        if not scal_ms:
            continue
        fig_ratio[ds][op] = round(scal_ms / kern_ms, 3) if kern_ms else None
        if scal_ms < RES_FLOOR_MS or kern_ms < RES_FLOOR_MS:
            continue
        pct = (kern_ms - scal_ms) / scal_ms * 100.0
        if worst["pct"] is None or pct > worst["pct"]:
            worst = {"pct": round(pct, 2), "cell": f"{ds}/{op}"}

doc = {
    "meta": {
        "generated_by": "scripts/run_benches.sh",
        "date_utc": sh("date -u +%Y-%m-%dT%H:%M:%SZ"),
        "commit": sh("git rev-parse --short HEAD"),
        "git_dirty": bool(sh("git status --porcelain")),
        "machine": {
            "uname": sh("uname -srm"),
            "cpus": int(sh("nproc") or 0),
            "cpu_model": sh(
                "grep -m1 'model name' /proc/cpuinfo | cut -d: -f2"),
            "compiler": sh("c++ --version | head -1"),
        },
        "build_type": "Release",
        "benchmark_min_time_s": float(sh("echo ${MIN_TIME:-0.1}") or 0.1),
        "fig12_reps_min_of": int(sh("echo ${FIG12_REPS:-3}") or 3),
    },
    "kernel_speedup": {
        "comment": "scalar_time / kernel_time from micro_dominance, "
                   "same binary, keyed by object instance count",
        "profile_build_matrix": speedups("BM_ProfileBuild"),
        "profile_stats_fused": speedups("BM_ProfileStats"),
    },
    "fig12": {
        "comment": "avg query ms per dataset x operator, min over reps; "
                   "ratio is scalar/kernels (>1 means kernels faster)",
        "kernels_ms": fig_kern,
        "scalar_ms": fig_scal,
        "ratio": fig_ratio,
        "worst_kernel_regression_pct": worst["pct"],
        "worst_kernel_regression_cell": worst["cell"],
        "regression_resolution_floor_ms": RES_FLOOR_MS,
    },
    "micro_dominance": micro_dom,
    "micro_substrates": micro_sub,
}
with open(out, "w") as f:
    json.dump(doc, f, indent=1)
    f.write("\n")

bld = doc["kernel_speedup"]["profile_build_matrix"]
print(f"\nwrote {out}")
print(f"  matrix-build speedup: {bld}")
print(f"  worst fig12 kernel regression: {worst['pct']}% ({worst['cell']})")
PY
