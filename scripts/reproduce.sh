#!/usr/bin/env bash
# Builds the project, runs the full test suite, and regenerates every
# reproduced figure of the paper into test_output.txt / bench_output.txt.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build

ctest --test-dir build 2>&1 | tee test_output.txt

for b in build/bench/*; do
  if [ -x "$b" ] && [ -f "$b" ]; then
    echo "=== $b ==="
    "$b"
  fi
done 2>&1 | tee bench_output.txt
