// Micro-benchmarks of the pairwise dominance checks: per-operator cost as
// the instance count grows, and the effect of the filter stack.
//
// Two separately-timed regions so wins are attributable:
//  - BM_ProfileBuild / BM_ProfileStats: distance-view materialization (the
//    batched / fused kernel substrate), kernel vs scalar-fallback.
//  - BM_DominanceCheck: the oracle decision over pre-materialized
//    profiles, with view construction outside the timer.

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "core/dominance_oracle.h"
#include "core/profile_scratch.h"
#include "datagen/generators.h"
#include "geom/kernels.h"

namespace {

using namespace osd;

struct Fixture {
  UncertainObject query;
  UncertainObject u;
  UncertainObject v;
};

// U contracted toward the query (dominance likely), V independent.
Fixture MakeFixture(int m, uint64_t seed) {
  Rng rng(seed);
  const Point qc = GenerateCenter(CenterDistribution::kIndependent, 3,
                                  10'000.0, rng);
  Fixture f{GenerateObjectAt(-1, qc, 200.0, 30, 10'000.0, rng),
            GenerateObjectAt(0, qc, 300.0, m, 10'000.0, rng),
            GenerateObjectAt(1, qc, 400.0, m, 10'000.0, rng)};
  return f;
}

// Forces every lazy view an operator might consume, so the check benchmark
// below times only the decision logic.
void Prewarm(ObjectProfile& p) {
  (void)p.MinAll();
  (void)p.Dist(0, 0);
  (void)p.SortedValues();
  (void)p.SortedQValues(0);
  (void)p.Distribution();
}

// Matrix materialization per profile (the dominant cost of brute-force
// checks): one fresh profile per iteration, recycled through a scratch
// arena exactly like NncSearch::Run does.
void BM_ProfileBuild(benchmark::State& state, bool scalar) {
  const int m = static_cast<int>(state.range(0));
  const Fixture f = MakeFixture(m, 42);
  const QueryContext ctx(f.query);
  kernels::SetScalarFallback(scalar);
  ProfileScratch scratch;
  for (auto _ : state) {
    ObjectProfile pu(f.u, ctx, nullptr);
    benchmark::DoNotOptimize(pu.Dist(0, 0));
  }
  kernels::SetScalarFallback(false);
  state.SetComplexityN(m);
  state.SetItemsProcessed(state.iterations() * ctx.num_instances() * m);
}

// Fused statistic pass per profile (the common statistic-only pruning
// path): never materializes the matrix.
void BM_ProfileStats(benchmark::State& state, bool scalar) {
  const int m = static_cast<int>(state.range(0));
  const Fixture f = MakeFixture(m, 42);
  const QueryContext ctx(f.query);
  kernels::SetScalarFallback(scalar);
  ProfileScratch scratch;
  for (auto _ : state) {
    ObjectProfile pu(f.u, ctx, nullptr);
    benchmark::DoNotOptimize(pu.MinAll());
  }
  kernels::SetScalarFallback(false);
  state.SetComplexityN(m);
  state.SetItemsProcessed(state.iterations() * ctx.num_instances() * m);
}

// The check itself, profiles pre-materialized outside the timer.
void BM_DominanceCheck(benchmark::State& state, Operator op,
                       FilterConfig cfg) {
  const int m = static_cast<int>(state.range(0));
  const Fixture f = MakeFixture(m, 42);
  const QueryContext ctx(f.query);
  FilterStats stats;
  DominanceOracle oracle(ctx, cfg, &stats);
  ObjectProfile pu(f.u, ctx, &stats);
  ObjectProfile pv(f.v, ctx, &stats);
  if (op != Operator::kFPlusSd) {
    Prewarm(pu);
    Prewarm(pv);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(oracle.Dominates(op, pu, pv));
  }
  state.SetComplexityN(m);
}

}  // namespace

BENCHMARK_CAPTURE(BM_ProfileBuild, matrix_kernels, false)
    ->RangeMultiplier(2)
    ->Range(8, 256);
BENCHMARK_CAPTURE(BM_ProfileBuild, matrix_scalar, true)
    ->RangeMultiplier(2)
    ->Range(8, 256);
BENCHMARK_CAPTURE(BM_ProfileStats, stats_kernels, false)
    ->RangeMultiplier(2)
    ->Range(8, 256);
BENCHMARK_CAPTURE(BM_ProfileStats, stats_scalar, true)
    ->RangeMultiplier(2)
    ->Range(8, 256);

BENCHMARK_CAPTURE(BM_DominanceCheck, ssd_all, Operator::kSSd,
                  FilterConfig::All())
    ->RangeMultiplier(2)
    ->Range(8, 128);
BENCHMARK_CAPTURE(BM_DominanceCheck, ssd_bruteforce, Operator::kSSd,
                  FilterConfig::BruteForce())
    ->RangeMultiplier(2)
    ->Range(8, 128);
BENCHMARK_CAPTURE(BM_DominanceCheck, sssd_all, Operator::kSsSd,
                  FilterConfig::All())
    ->RangeMultiplier(2)
    ->Range(8, 128);
BENCHMARK_CAPTURE(BM_DominanceCheck, psd_all, Operator::kPSd,
                  FilterConfig::All())
    ->RangeMultiplier(2)
    ->Range(8, 128);
BENCHMARK_CAPTURE(BM_DominanceCheck, psd_bruteforce, Operator::kPSd,
                  FilterConfig::BruteForce())
    ->RangeMultiplier(2)
    ->Range(8, 64);
BENCHMARK_CAPTURE(BM_DominanceCheck, fsd_all, Operator::kFSd,
                  FilterConfig::All())
    ->RangeMultiplier(2)
    ->Range(8, 128);
BENCHMARK_CAPTURE(BM_DominanceCheck, fplus_sd, Operator::kFPlusSd,
                  FilterConfig::All())
    ->RangeMultiplier(2)
    ->Range(8, 128);

BENCHMARK_MAIN();
