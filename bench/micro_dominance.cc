// Micro-benchmarks of the pairwise dominance checks: per-operator cost as
// the instance count grows, and the effect of the filter stack.

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "core/dominance_oracle.h"
#include "datagen/generators.h"

namespace {

using namespace osd;

struct Fixture {
  UncertainObject query;
  UncertainObject u;
  UncertainObject v;
};

// U contracted toward the query (dominance likely), V independent.
Fixture MakeFixture(int m, uint64_t seed) {
  Rng rng(seed);
  const Point qc = GenerateCenter(CenterDistribution::kIndependent, 3,
                                  10'000.0, rng);
  Fixture f{GenerateObjectAt(-1, qc, 200.0, 30, 10'000.0, rng),
            GenerateObjectAt(0, qc, 300.0, m, 10'000.0, rng),
            GenerateObjectAt(1, qc, 400.0, m, 10'000.0, rng)};
  return f;
}

void BM_DominanceCheck(benchmark::State& state, Operator op,
                       FilterConfig cfg) {
  const int m = static_cast<int>(state.range(0));
  const Fixture f = MakeFixture(m, 42);
  const QueryContext ctx(f.query);
  for (auto _ : state) {
    FilterStats stats;
    DominanceOracle oracle(ctx, cfg, &stats);
    ObjectProfile pu(f.u, ctx, &stats);
    ObjectProfile pv(f.v, ctx, &stats);
    benchmark::DoNotOptimize(oracle.Dominates(op, pu, pv));
  }
  state.SetComplexityN(m);
}

}  // namespace

BENCHMARK_CAPTURE(BM_DominanceCheck, ssd_all, Operator::kSSd,
                  FilterConfig::All())
    ->RangeMultiplier(2)
    ->Range(8, 128);
BENCHMARK_CAPTURE(BM_DominanceCheck, ssd_bruteforce, Operator::kSSd,
                  FilterConfig::BruteForce())
    ->RangeMultiplier(2)
    ->Range(8, 128);
BENCHMARK_CAPTURE(BM_DominanceCheck, sssd_all, Operator::kSsSd,
                  FilterConfig::All())
    ->RangeMultiplier(2)
    ->Range(8, 128);
BENCHMARK_CAPTURE(BM_DominanceCheck, psd_all, Operator::kPSd,
                  FilterConfig::All())
    ->RangeMultiplier(2)
    ->Range(8, 128);
BENCHMARK_CAPTURE(BM_DominanceCheck, psd_bruteforce, Operator::kPSd,
                  FilterConfig::BruteForce())
    ->RangeMultiplier(2)
    ->Range(8, 64);
BENCHMARK_CAPTURE(BM_DominanceCheck, fsd_all, Operator::kFSd,
                  FilterConfig::All())
    ->RangeMultiplier(2)
    ->Range(8, 128);
BENCHMARK_CAPTURE(BM_DominanceCheck, fplus_sd, Operator::kFPlusSd,
                  FilterConfig::All())
    ->RangeMultiplier(2)
    ->Range(8, 128);

BENCHMARK_MAIN();
