// Micro-benchmarks of the substrates: R-tree bulk load and queries,
// stochastic-order scans, max-flow feasibility and EMD min-cost flow.

#include <benchmark/benchmark.h>

#include <numeric>
#include <vector>

#include "common/rng.h"
#include "flow/max_flow.h"
#include "index/rtree.h"
#include "nnfun/n3_functions.h"
#include "nnfun/rank_engine.h"
#include "prob/stochastic_order.h"

namespace {

using namespace osd;

std::vector<RTree::Entry> MakeEntries(int n, uint64_t seed) {
  Rng rng(seed);
  std::vector<RTree::Entry> entries(n);
  for (int i = 0; i < n; ++i) {
    Point p{rng.Uniform(0.0, 1000.0), rng.Uniform(0.0, 1000.0),
            rng.Uniform(0.0, 1000.0)};
    entries[i] = {Mbr(p), i, 1.0 / n};
  }
  return entries;
}

void BM_RTreeBulkLoad(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto entries = MakeEntries(n, 7);
  for (auto _ : state) {
    auto copy = entries;
    benchmark::DoNotOptimize(RTree::BulkLoad(std::move(copy), 16));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_RTreeBulkLoad)->Range(1 << 10, 1 << 16);

void BM_RTreeNnSearch(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const RTree tree = RTree::BulkLoad(MakeEntries(n, 7), 16);
  Rng rng(9);
  for (auto _ : state) {
    Point q{rng.Uniform(0.0, 1000.0), rng.Uniform(0.0, 1000.0),
            rng.Uniform(0.0, 1000.0)};
    benchmark::DoNotOptimize(tree.MinDist(q));
  }
}
BENCHMARK(BM_RTreeNnSearch)->Range(1 << 10, 1 << 16);

void BM_StochasticOrderScan(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(11);
  std::vector<double> xv(n), yv(n), p(n, 1.0 / n);
  for (int i = 0; i < n; ++i) {
    xv[i] = rng.Uniform(0.0, 100.0);
    yv[i] = xv[i] + rng.Uniform(0.0, 5.0);
  }
  std::sort(xv.begin(), xv.end());
  std::sort(yv.begin(), yv.end());
  for (auto _ : state) {
    benchmark::DoNotOptimize(StochasticallyLeqSorted(xv, p, yv, p));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_StochasticOrderScan)->Range(1 << 6, 1 << 14);

void BM_MaxFlowFeasibility(benchmark::State& state) {
  const int m = static_cast<int>(state.range(0));
  Rng rng(13);
  // A random bipartite feasibility instance like a P-SD check.
  std::vector<std::pair<int, int>> edges;
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < m; ++j) {
      if (rng.Flip(0.4)) edges.emplace_back(i, j);
    }
  }
  const std::vector<double> probs(m, 1.0 / m);
  const auto mass = ScaleProbabilities(probs, kProbScale);
  for (auto _ : state) {
    MaxFlow flow(2 * m + 2);
    const int s = 2 * m, t = 2 * m + 1;
    for (int i = 0; i < m; ++i) flow.AddEdge(s, i, mass[i]);
    for (int j = 0; j < m; ++j) flow.AddEdge(m + j, t, mass[j]);
    for (const auto& [i, j] : edges) flow.AddEdge(i, m + j, kProbScale);
    benchmark::DoNotOptimize(flow.Compute(s, t));
  }
}
BENCHMARK(BM_MaxFlowFeasibility)->RangeMultiplier(2)->Range(8, 128);

void BM_RankEngine(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(19);
  std::vector<UncertainObject> objects;
  for (int i = 0; i < n; ++i) {
    std::vector<double> coords;
    for (int k = 0; k < 5; ++k) {
      coords.push_back(rng.Uniform(0.0, 100.0));
      coords.push_back(rng.Uniform(0.0, 100.0));
    }
    objects.push_back(UncertainObject::Uniform(i, 2, coords));
  }
  std::vector<double> qcoords;
  for (int k = 0; k < 4; ++k) {
    qcoords.push_back(rng.Uniform(0.0, 100.0));
    qcoords.push_back(rng.Uniform(0.0, 100.0));
  }
  const auto query = UncertainObject::Uniform(-1, 2, qcoords);
  std::vector<const UncertainObject*> ptrs;
  for (const auto& o : objects) ptrs.push_back(&o);
  for (auto _ : state) {
    const RankEngine engine(ptrs, query);
    benchmark::DoNotOptimize(engine.RankProbability(0, 1));
  }
}
BENCHMARK(BM_RankEngine)->RangeMultiplier(2)->Range(8, 64);

void BM_EmdDistance(benchmark::State& state) {
  const int m = static_cast<int>(state.range(0));
  Rng rng(17);
  std::vector<double> uc, qc;
  for (int i = 0; i < m; ++i) {
    uc.push_back(rng.Uniform(0.0, 100.0));
    uc.push_back(rng.Uniform(0.0, 100.0));
    qc.push_back(rng.Uniform(0.0, 100.0));
    qc.push_back(rng.Uniform(0.0, 100.0));
  }
  const auto u = UncertainObject::Uniform(0, 2, uc);
  const auto q = UncertainObject::Uniform(-1, 2, qc);
  for (auto _ : state) {
    benchmark::DoNotOptimize(EmdDistance(u, q));
  }
}
BENCHMARK(BM_EmdDistance)->RangeMultiplier(2)->Range(4, 64);

}  // namespace

BENCHMARK_MAIN();
