// Shared helpers for the figure-reproduction benchmark binaries.
//
// Every binary regenerates one figure of the paper's evaluation
// (Section 6 / Appendix C) and prints the same rows/series the figure
// plots. Parameters follow Table 2 with documented scale-downs (see
// EXPERIMENTS.md) so each binary finishes in seconds on one laptop core.

#ifndef OSD_BENCH_BENCH_UTIL_H_
#define OSD_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <vector>

#include "core/nnc_search.h"
#include "datagen/generators.h"
#include "datagen/workload.h"

namespace osd {
namespace bench {

/// The five NNC algorithms of Section 6, in the paper's order.
inline const Operator kAlgorithms[] = {Operator::kSSd, Operator::kSsSd,
                                       Operator::kPSd, Operator::kFSd,
                                       Operator::kFPlusSd};

/// Scaled defaults of Table 2 (paper defaults in comments).
struct ScaledDefaults {
  static constexpr int kDim = 3;            // d      (paper: 3)
  static constexpr int kNumObjects = 10'000;  // n    (paper: 100k, 1:10)
  static constexpr int kObjInstances = 40;  // m_d    (paper: 40)
  static constexpr double kObjEdge = 400.0; // h_d    (paper: 400)
  static constexpr int kQueryInstances = 30;  // m_q  (paper: 30)
  static constexpr double kQueryEdge = 200.0; // h_q  (paper: 200)
  static constexpr int kNumQueries = 5;     // workload (paper: 100, 1:20)
};

/// Aggregated result of one (dataset, operator) workload run.
struct WorkloadSummary {
  double avg_candidates = 0.0;
  double avg_ms = 0.0;
  FilterStats stats;
  long queries = 0;
};

/// Runs the NNC search for every workload query and averages.
inline WorkloadSummary RunNncWorkload(
    const Dataset& dataset, const std::vector<QueryWorkloadEntry>& workload,
    Operator op, FilterConfig filters = FilterConfig::All()) {
  WorkloadSummary summary;
  NncOptions options;
  options.op = op;
  options.filters = filters;
  for (const auto& entry : workload) {
    NncOptions per_query = options;
    per_query.exclude_id = entry.seeded_from;
    const NncResult result =
        NncSearch(dataset, per_query).Run(entry.query);
    summary.avg_candidates += static_cast<double>(result.candidates.size());
    summary.avg_ms += result.seconds * 1e3;
    summary.stats += result.stats;
    ++summary.queries;
  }
  if (summary.queries > 0) {
    summary.avg_candidates /= summary.queries;
    summary.avg_ms /= summary.queries;
  }
  return summary;
}

/// Default synthetic dataset (A-N / E-N) with one parameter overridden by
/// the caller before generation.
inline SyntheticParams DefaultSynthetic(CenterDistribution centers) {
  SyntheticParams p;
  p.dim = ScaledDefaults::kDim;
  p.num_objects = ScaledDefaults::kNumObjects;
  p.instances_per_object = ScaledDefaults::kObjInstances;
  p.object_edge = ScaledDefaults::kObjEdge;
  p.centers = centers;
  p.seed = 20150531;  // SIGMOD'15 opening day
  return p;
}

inline WorkloadParams DefaultWorkload() {
  WorkloadParams wp;
  wp.num_queries = ScaledDefaults::kNumQueries;
  wp.query_instances = ScaledDefaults::kQueryInstances;
  wp.query_edge = ScaledDefaults::kQueryEdge;
  wp.seed = 424242;
  return wp;
}

inline void PrintTableHeader(const char* xlabel) {
  std::printf("%-12s", xlabel);
  for (Operator op : kAlgorithms) std::printf(" %12s", OperatorName(op));
  std::printf("\n");
}

inline void PrintRow(const char* label, const double values[5]) {
  std::printf("%-12s", label);
  for (int i = 0; i < 5; ++i) std::printf(" %12.1f", values[i]);
  std::printf("\n");
}

}  // namespace bench
}  // namespace osd

#endif  // OSD_BENCH_BENCH_UTIL_H_
