// Figure 13: impact of the Table-2 parameters on the average query
// response time (ms). Panels mirror Figure 11: (a) m_d, (b) h_d, (c) m_q,
// (d) h_q on A-N; (e) n on USA; (f) d on A-N.
//
// Paper shape to reproduce: FSD/F+SD stay fastest as m_d/h_d/m_q/h_q grow;
// as n grows their candidate blow-up makes SSD/SSSD overtake them; all
// algorithms get faster as d grows (fewer candidates).

#include <cstdio>
#include <string>

#include "bench_util.h"
#include "datagen/surrogates.h"

namespace {

using namespace osd;
using namespace osd::bench;

// Parameter sweeps run 24+ dataset/workload combinations, so they use a
// lighter per-combination workload than the single-table figures.
WorkloadParams LightWorkload() {
  WorkloadParams wp = DefaultWorkload();
  wp.num_queries = 3;
  return wp;
}

void RunPanel(const char* title, const char* xlabel,
              const std::vector<std::pair<std::string, Dataset>>& datasets,
              const WorkloadParams& wp) {
  std::printf("\n--- %s ---\n", title);
  PrintTableHeader(xlabel);
  for (const auto& [label, dataset] : datasets) {
    const auto workload = GenerateWorkload(dataset, wp);
    double row[5];
    int i = 0;
    for (Operator op : kAlgorithms) {
      row[i++] = RunNncWorkload(dataset, workload, op).avg_ms;
    }
    PrintRow(label.c_str(), row);
  }
}

}  // namespace

int main() {
  std::setvbuf(stdout, nullptr, _IOLBF, 0);
  std::printf("=== Figure 13: avg response time (ms) vs parameters ===\n");

  {
    std::vector<std::pair<std::string, Dataset>> datasets;
    for (int md : {20, 40, 60, 80, 100}) {
      auto p = DefaultSynthetic(CenterDistribution::kAntiCorrelated);
      p.instances_per_object = md;
      datasets.emplace_back(std::to_string(md), GenerateSynthetic(p));
    }
    RunPanel("(a) object instances m_d (A-N)", "m_d", datasets,
             LightWorkload());
  }
  {
    std::vector<std::pair<std::string, Dataset>> datasets;
    for (double hd : {100.0, 200.0, 300.0, 400.0, 500.0}) {
      auto p = DefaultSynthetic(CenterDistribution::kAntiCorrelated);
      p.object_edge = hd;
      datasets.emplace_back(std::to_string(static_cast<int>(hd)),
                            GenerateSynthetic(p));
    }
    RunPanel("(b) object edge h_d (A-N)", "h_d", datasets, LightWorkload());
  }
  {
    const Dataset dataset = GenerateSynthetic(
        DefaultSynthetic(CenterDistribution::kAntiCorrelated));
    std::printf("\n--- (c) query instances m_q (A-N) ---\n");
    PrintTableHeader("m_q");
    for (int mq : {10, 20, 30, 40, 50}) {
      auto wp = LightWorkload();
      wp.query_instances = mq;
      const auto workload = GenerateWorkload(dataset, wp);
      double row[5];
      int i = 0;
      for (Operator op : kAlgorithms) {
        row[i++] = RunNncWorkload(dataset, workload, op).avg_ms;
      }
      PrintRow(std::to_string(mq).c_str(), row);
    }
  }
  {
    const Dataset dataset = GenerateSynthetic(
        DefaultSynthetic(CenterDistribution::kAntiCorrelated));
    std::printf("\n--- (d) query edge h_q (A-N) ---\n");
    PrintTableHeader("h_q");
    for (double hq : {100.0, 200.0, 300.0, 400.0, 500.0}) {
      auto wp = LightWorkload();
      wp.query_edge = hq;
      const auto workload = GenerateWorkload(dataset, wp);
      double row[5];
      int i = 0;
      for (Operator op : kAlgorithms) {
        row[i++] = RunNncWorkload(dataset, workload, op).avg_ms;
      }
      PrintRow(std::to_string(static_cast<int>(hq)).c_str(), row);
    }
  }
  {
    std::vector<std::pair<std::string, Dataset>> datasets;
    for (int n : {10'000, 20'000, 30'000, 40'000, 50'000}) {
      datasets.emplace_back(std::to_string(n / 1000) + "k",
                            UsaLike(n, 10, 400.0, 1));
    }
    RunPanel("(e) objects n (USA, 10 instances each)", "n", datasets,
             LightWorkload());
  }
  {
    std::vector<std::pair<std::string, Dataset>> datasets;
    for (int d : {2, 3, 4, 5}) {
      auto p = DefaultSynthetic(CenterDistribution::kAntiCorrelated);
      p.dim = d;
      datasets.emplace_back(std::to_string(d), GenerateSynthetic(p));
    }
    RunPanel("(f) dimensionality d (A-N)", "d", datasets, LightWorkload());
  }
  return 0;
}
