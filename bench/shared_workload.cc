// Aggregate throughput of the cross-query work-sharing layers: the
// engine-wide profile cache plus multi-query batched traversal, measured
// on a skewed (Zipf) multi-client workload — the regime the sharing was
// built for, where a hot set of queries repeats across clients.
//
// Usage:
//   shared_workload [--objects N] [--clients C] [--threads T]
//                   [--distinct K] [--zipf-s S] [--seconds SECS]
//                   [--cache-bytes B] [--max-batch M] [--batch-window-us U]
//                   [--out BENCH_shared.json]
//
// Two closed-loop rounds over the identical workload and dataset:
//   unshared — profile cache off, max_batch 1 (the pre-sharing engine)
//   shared   — cache + batching on at the flag-configured sizes
// C client threads each loop {draw a query by Zipf rank over K distinct
// queries, Submit, Wait}, so offered load self-regulates and latency
// percentiles are honest. Both rounds get one untimed warmup pass over
// all K queries.
//
// Reported per round: aggregate q/s, p50/p95/p99 ms, and the engine's own
// executed-based QPS (sheds excluded); for the shared round also cache
// hit rate, evictions, and resident bytes. The JSON records the headline
// `speedup` (shared q/s / unshared q/s) and `slo_ok` — whether the shared
// round held the p99 SLO, fixed at the unshared round's p99 (work sharing
// must buy throughput without giving back tail latency). Exit is non-zero
// if any query failed in either round.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "engine/query_engine.h"

namespace {

using namespace osd;
using namespace osd::bench;

struct Config {
  int objects = 4000;
  int clients = 8;
  int threads = 2;
  int distinct = 32;    // K: size of the query universe
  double zipf_s = 1.1;  // Zipf exponent (1.1 ~ web-cache-like skew)
  double seconds = 2.0;
  long cache_bytes = 256L << 20;
  int max_batch = 4;
  double batch_window_us = 200.0;
  std::string out = "BENCH_shared.json";
};

Config ParseArgs(int argc, char** argv) {
  Config cfg;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", flag.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (flag == "--objects") {
      cfg.objects = std::atoi(value().c_str());
    } else if (flag == "--clients") {
      cfg.clients = std::atoi(value().c_str());
    } else if (flag == "--threads") {
      cfg.threads = std::atoi(value().c_str());
    } else if (flag == "--distinct") {
      cfg.distinct = std::atoi(value().c_str());
    } else if (flag == "--zipf-s") {
      cfg.zipf_s = std::atof(value().c_str());
    } else if (flag == "--seconds") {
      cfg.seconds = std::atof(value().c_str());
    } else if (flag == "--cache-bytes") {
      cfg.cache_bytes = std::atol(value().c_str());
    } else if (flag == "--max-batch") {
      cfg.max_batch = std::atoi(value().c_str());
    } else if (flag == "--batch-window-us") {
      cfg.batch_window_us = std::atof(value().c_str());
    } else if (flag == "--out") {
      cfg.out = value();
    } else {
      std::fprintf(stderr, "unknown flag %s\n", flag.c_str());
      std::exit(2);
    }
  }
  return cfg;
}

double Percentile(std::vector<double>& v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  return v[static_cast<size_t>(p * (v.size() - 1))];
}

/// Cumulative Zipf weights over ranks 1..k: weight(r) = r^-s.
std::vector<double> ZipfCdf(int k, double s) {
  std::vector<double> cdf(k);
  double sum = 0.0;
  for (int r = 0; r < k; ++r) {
    sum += std::pow(static_cast<double>(r + 1), -s);
    cdf[r] = sum;
  }
  for (double& c : cdf) c /= sum;
  return cdf;
}

struct ClientStats {
  long completed = 0;
  long errors = 0;
  std::vector<double> latency_ms;
};

void ClientLoop(QueryEngine* engine,
                const std::vector<QueryWorkloadEntry>* workload,
                const std::vector<double>* zipf_cdf, uint64_t seed,
                const std::atomic<bool>* stop, ClientStats* stats) {
  uint64_t rng = seed * 0x9e3779b97f4a7c15ULL + 1;
  auto next_u01 = [&]() {
    rng = rng * 6364136223846793005ULL + 1442695040888963407ULL;
    return static_cast<double>(rng >> 11) * 0x1.0p-53;
  };
  while (!stop->load(std::memory_order_relaxed)) {
    const double u = next_u01();
    const size_t idx = static_cast<size_t>(
        std::lower_bound(zipf_cdf->begin(), zipf_cdf->end(), u) -
        zipf_cdf->begin());
    const QueryWorkloadEntry& entry =
        (*workload)[std::min(idx, workload->size() - 1)];
    QuerySpec spec;
    spec.query = entry.query;
    spec.options.op = Operator::kSSd;
    spec.options.exclude_id = entry.seeded_from;
    const auto t0 = std::chrono::steady_clock::now();
    auto ticket = engine->Submit(std::move(spec));
    const QueryStatus status = ticket->Wait();
    const double ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
    if (status == QueryStatus::kOk || status == QueryStatus::kOkDegraded) {
      ++stats->completed;
      stats->latency_ms.push_back(ms);
    } else {
      ++stats->errors;
    }
  }
}

struct RoundResult {
  double qps = 0.0;
  double p50 = 0.0, p95 = 0.0, p99 = 0.0;
  long completed = 0;
  long errors = 0;
  EngineStats engine;
};

RoundResult RunRound(const Dataset& dataset,
                     const std::vector<QueryWorkloadEntry>& workload,
                     const std::vector<double>& zipf_cdf, const Config& cfg,
                     bool shared) {
  EngineOptions options;
  options.num_threads = cfg.threads;
  if (shared) {
    options.profile_cache_bytes = cfg.cache_bytes;
    options.max_batch = cfg.max_batch;
    options.batch_window_us = cfg.batch_window_us;
  }
  QueryEngine engine(dataset, options);

  RoundResult result;
  // Warmup: one untimed pass over the whole query universe (fills the
  // cache in the shared round; equalizes page/alloc warmth in both).
  for (const QueryWorkloadEntry& entry : workload) {
    QuerySpec spec;
    spec.query = entry.query;
    spec.options.op = Operator::kSSd;
    spec.options.exclude_id = entry.seeded_from;
    if (engine.Submit(std::move(spec))->Wait() != QueryStatus::kOk) {
      ++result.errors;
    }
  }

  std::atomic<bool> stop{false};
  std::vector<ClientStats> stats(cfg.clients);
  std::vector<std::thread> clients;
  clients.reserve(cfg.clients);
  for (int c = 0; c < cfg.clients; ++c) {
    clients.emplace_back(ClientLoop, &engine, &workload, &zipf_cdf,
                         static_cast<uint64_t>(c + 1), &stop, &stats[c]);
  }
  const auto t0 = std::chrono::steady_clock::now();
  std::this_thread::sleep_for(std::chrono::duration<double>(cfg.seconds));
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : clients) t.join();
  const double secs = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
  // Snapshot before Drain: draining clears the cache, and the resident
  // byte count at end-of-round is part of the report.
  result.engine = engine.Snapshot();
  engine.Drain();

  std::vector<double> latency;
  for (const ClientStats& cs : stats) {
    result.completed += cs.completed;
    result.errors += cs.errors;
    latency.insert(latency.end(), cs.latency_ms.begin(),
                   cs.latency_ms.end());
  }
  result.qps = result.completed / secs;
  result.p50 = Percentile(latency, 0.50);
  result.p95 = Percentile(latency, 0.95);
  result.p99 = Percentile(latency, 0.99);
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const Config cfg = ParseArgs(argc, argv);

  SyntheticParams sp = DefaultSynthetic(CenterDistribution::kAntiCorrelated);
  sp.num_objects = cfg.objects;
  const Dataset dataset = GenerateSynthetic(sp);

  WorkloadParams wp = DefaultWorkload();
  wp.num_queries = cfg.distinct;
  const auto workload = GenerateWorkload(dataset, wp);
  const auto zipf_cdf = ZipfCdf(cfg.distinct, cfg.zipf_s);

  std::printf(
      "shared_workload: %d objects, %d clients over %d distinct queries "
      "(zipf s=%.2f), %.1fs rounds\n",
      cfg.objects, cfg.clients, cfg.distinct, cfg.zipf_s, cfg.seconds);

  const RoundResult unshared =
      RunRound(dataset, workload, zipf_cdf, cfg, /*shared=*/false);
  std::printf("  unshared: %8.1f q/s  p50=%.2f p95=%.2f p99=%.2f ms\n",
              unshared.qps, unshared.p50, unshared.p95, unshared.p99);

  const RoundResult shared =
      RunRound(dataset, workload, zipf_cdf, cfg, /*shared=*/true);
  const EngineStats& es = shared.engine;
  const long lookups = es.profile_cache_hits + es.profile_cache_misses;
  const double hit_rate =
      lookups > 0 ? static_cast<double>(es.profile_cache_hits) / lookups
                  : 0.0;
  std::printf(
      "  shared:   %8.1f q/s  p50=%.2f p95=%.2f p99=%.2f ms  "
      "hit_rate=%.3f evictions=%ld\n",
      shared.qps, shared.p50, shared.p95, shared.p99, hit_rate,
      es.profile_cache_evictions);

  // The SLO is the unshared round's own p99: sharing must not trade tail
  // latency for throughput.
  const double slo_p99_ms = unshared.p99;
  const double speedup =
      unshared.qps > 0.0 ? shared.qps / unshared.qps : 0.0;
  const bool slo_ok = shared.p99 <= slo_p99_ms;
  std::printf("  speedup=%.2fx  slo(p99<=%.2fms)=%s\n", speedup, slo_p99_ms,
              slo_ok ? "met" : "MISSED");

  std::FILE* f = std::fopen(cfg.out.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", cfg.out.c_str());
    return 1;
  }
  auto round_json = [&](const char* name, const RoundResult& r) {
    std::fprintf(f,
                 "\"%s\":{\"qps\":%.2f,\"p50_ms\":%.3f,\"p95_ms\":%.3f,"
                 "\"p99_ms\":%.3f,\"completed\":%ld,\"errors\":%ld,"
                 "\"engine_executed\":%ld,\"engine_qps\":%.2f}",
                 name, r.qps, r.p50, r.p95, r.p99, r.completed, r.errors,
                 r.engine.executed, r.engine.qps);
  };
  std::fprintf(f,
               "{\"bench\":\"shared_workload\",\"objects\":%d,"
               "\"clients\":%d,\"threads\":%d,\"distinct\":%d,"
               "\"zipf_s\":%.2f,\"seconds\":%.2f,\"cache_bytes\":%ld,"
               "\"max_batch\":%d,\"batch_window_us\":%.1f,",
               cfg.objects, cfg.clients, cfg.threads, cfg.distinct,
               cfg.zipf_s, cfg.seconds, cfg.cache_bytes, cfg.max_batch,
               cfg.batch_window_us);
  round_json("unshared", unshared);
  std::fprintf(f, ",");
  round_json("shared", shared);
  std::fprintf(f,
               ",\"cache\":{\"hits\":%ld,\"misses\":%ld,\"hit_rate\":%.4f,"
               "\"evictions\":%ld,\"stale_evictions\":%ld,"
               "\"stale_serves_averted\":%ld,\"peak_resident_hint_bytes\":%ld}"
               ",\"speedup\":%.3f,\"slo_p99_ms\":%.3f,\"slo_ok\":%s}\n",
               es.profile_cache_hits, es.profile_cache_misses, hit_rate,
               es.profile_cache_evictions, es.profile_cache_stale_evictions,
               es.profile_cache_stale_serves_averted, es.profile_cache_bytes,
               speedup, slo_p99_ms, slo_ok ? "true" : "false");
  std::fclose(f);
  std::printf("  wrote %s\n", cfg.out.c_str());
  return unshared.errors + shared.errors == 0 ? 0 : 1;
}
