// Memory-governance overhead: cost of the budget accounting on the query
// hot path.
//
// Usage:
//   mem_overhead [--objects N] [--queries Q] [--rounds R]
//                [--out BENCH_mem.json]
//
// The binary runs the same serial workload three ways per round — with no
// scope installed (the production default when budgets are off: every
// Charge() is one thread-local load and a branch), with an uncapped
// QueryBudgetScope (full per-query accounting), and with a scope drawing
// on an engine-wide MemoryBudget (accounting plus chunked reservation) —
// and reports the best queries/sec of each mode plus the relative
// overhead against the unscoped baseline (target: <= 2% for the scoped
// modes). Modes alternate within each round so clock drift and cache
// warmup hit all three equally; local trees are pre-warmed before timing.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/memory_budget.h"
#include "core/nnc_search.h"

namespace {

using namespace osd;
using namespace osd::bench;

struct Config {
  int objects = 2000;
  int queries = 96;
  int rounds = 5;
  std::string out = "BENCH_mem.json";
};

Config ParseArgs(int argc, char** argv) {
  Config cfg;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", flag.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (flag == "--objects") {
      cfg.objects = std::atoi(value().c_str());
    } else if (flag == "--queries") {
      cfg.queries = std::atoi(value().c_str());
    } else if (flag == "--rounds") {
      cfg.rounds = std::atoi(value().c_str());
    } else if (flag == "--out") {
      cfg.out = value();
    } else {
      std::fprintf(stderr, "unknown flag %s\n", flag.c_str());
      std::exit(2);
    }
  }
  return cfg;
}

double Elapsed(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  const Config cfg = ParseArgs(argc, argv);

  SyntheticParams sp = DefaultSynthetic(CenterDistribution::kAntiCorrelated);
  sp.num_objects = cfg.objects;
  const Dataset dataset = GenerateSynthetic(sp);

  WorkloadParams wp = DefaultWorkload();
  wp.num_queries = cfg.queries;
  const auto workload = GenerateWorkload(dataset, wp);

  std::printf("mem_overhead: %d objects, %d queries, %d rounds\n",
              cfg.objects, cfg.queries, cfg.rounds);

  enum Mode { kUnscoped, kScoped, kScopedWithEngine };
  memory::MemoryBudget engine_budget(0);  // track-only: charges never refuse
  long sample_peak_bytes = 0;

  auto run_serial = [&](Mode mode) {
    for (const auto& entry : workload) {
      NncOptions options;
      options.op = Operator::kSSd;
      options.exclude_id = entry.seeded_from;
      if (mode == kUnscoped) {
        NncSearch(dataset, options).Run(entry.query);
      } else {
        memory::QueryBudgetScope scope(
            0, mode == kScopedWithEngine ? &engine_budget : nullptr);
        NncSearch(dataset, options).Run(entry.query);
        if (scope.peak_bytes() > sample_peak_bytes) {
          sample_peak_bytes = scope.peak_bytes();
        }
      }
    }
  };

  // Warmup: build every local tree and fault everything in, so no timed
  // mode pays one-time costs.
  run_serial(kUnscoped);

  double best_s[3] = {0.0, 0.0, 0.0};
  for (int r = 0; r < cfg.rounds; ++r) {
    for (Mode mode : {kUnscoped, kScoped, kScopedWithEngine}) {
      const auto t0 = std::chrono::steady_clock::now();
      run_serial(mode);
      const double s = Elapsed(t0);
      if (r == 0 || s < best_s[mode]) best_s[mode] = s;
    }
  }

  const double qps_unscoped = workload.size() / best_s[kUnscoped];
  const double qps_scoped = workload.size() / best_s[kScoped];
  const double qps_engine = workload.size() / best_s[kScopedWithEngine];
  const double scoped_pct = (best_s[kScoped] / best_s[kUnscoped] - 1) * 100;
  const double engine_pct =
      (best_s[kScopedWithEngine] / best_s[kUnscoped] - 1) * 100;
  std::printf("  unscoped:       %8.1f q/s\n", qps_unscoped);
  std::printf("  scoped:         %8.1f q/s  (overhead %+.2f%%)\n", qps_scoped,
              scoped_pct);
  std::printf("  scoped+engine:  %8.1f q/s  (overhead %+.2f%%)\n", qps_engine,
              engine_pct);
  std::printf("  max per-query peak: %ld bytes charged\n", sample_peak_bytes);

  std::FILE* f = std::fopen(cfg.out.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", cfg.out.c_str());
    return 1;
  }
  std::fprintf(f,
               "{\"bench\":\"mem_overhead\",\"objects\":%d,\"queries\":%d,"
               "\"rounds\":%d,\"qps_unscoped\":%.2f,\"qps_scoped\":%.2f,"
               "\"qps_scoped_engine\":%.2f,\"scoped_overhead_pct\":%.3f,"
               "\"scoped_engine_overhead_pct\":%.3f,"
               "\"max_query_peak_bytes\":%ld}\n",
               cfg.objects, cfg.queries, cfg.rounds, qps_unscoped, qps_scoped,
               qps_engine, scoped_pct, engine_pct, sample_peak_bytes);
  std::fclose(f);
  std::printf("  wrote %s\n", cfg.out.c_str());
  return 0;
}
