// Engine throughput: queries/sec vs. thread count on the default synthetic
// workload, with a bit-identity check against serial execution.
//
// Usage:
//   engine_throughput [--objects N] [--queries Q] [--op ssd|sssd|psd|fsd|f+sd]
//                     [--threads 1,2,4,8] [--out BENCH_engine.json]
//
// For every thread count the binary runs the same batch through a fresh
// QueryEngine (cold local-tree caches each round, so rounds are
// comparable), reports queries/sec, and verifies the candidate sets are
// identical to a serial NncSearch loop. Results land in BENCH_engine.json.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "engine/query_engine.h"

namespace {

using namespace osd;
using namespace osd::bench;

struct Config {
  int objects = 4000;
  int queries = 128;
  Operator op = Operator::kSSd;
  std::vector<int> threads = {1, 2, 4, 8};
  std::string out = "BENCH_engine.json";
};

Config ParseArgs(int argc, char** argv) {
  Config cfg;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", flag.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (flag == "--objects") {
      cfg.objects = std::atoi(value().c_str());
    } else if (flag == "--queries") {
      cfg.queries = std::atoi(value().c_str());
    } else if (flag == "--op") {
      const std::string v = value();
      if (v == "ssd") cfg.op = Operator::kSSd;
      else if (v == "sssd") cfg.op = Operator::kSsSd;
      else if (v == "psd") cfg.op = Operator::kPSd;
      else if (v == "fsd") cfg.op = Operator::kFSd;
      else if (v == "f+sd") cfg.op = Operator::kFPlusSd;
      else { std::fprintf(stderr, "unknown --op %s\n", v.c_str()); std::exit(2); }
    } else if (flag == "--threads") {
      cfg.threads.clear();
      const std::string v = value();
      for (size_t pos = 0; pos < v.size();) {
        const size_t comma = v.find(',', pos);
        cfg.threads.push_back(
            std::atoi(v.substr(pos, comma - pos).c_str()));
        pos = comma == std::string::npos ? v.size() : comma + 1;
      }
    } else if (flag == "--out") {
      cfg.out = value();
    } else {
      std::fprintf(stderr, "unknown flag %s\n", flag.c_str());
      std::exit(2);
    }
  }
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  const Config cfg = ParseArgs(argc, argv);

  SyntheticParams sp = DefaultSynthetic(CenterDistribution::kAntiCorrelated);
  sp.num_objects = cfg.objects;
  const Dataset dataset = GenerateSynthetic(sp);

  WorkloadParams wp = DefaultWorkload();
  wp.num_queries = cfg.queries;
  const auto workload = GenerateWorkload(dataset, wp);

  std::printf("engine_throughput: %d objects, %d queries, operator %s\n",
              cfg.objects, cfg.queries, OperatorName(cfg.op));

  // Serial ground truth (fresh copy: cold local-tree caches, like each
  // engine round).
  std::vector<std::vector<int>> serial;
  serial.reserve(workload.size());
  {
    const Dataset cold = dataset;
    const auto t0 = std::chrono::steady_clock::now();
    for (const auto& entry : workload) {
      NncOptions options;
      options.op = cfg.op;
      options.exclude_id = entry.seeded_from;
      serial.push_back(NncSearch(cold, options).Run(entry.query).candidates);
    }
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    std::printf("  serial loop: %8.1f q/s (%.3f s)\n",
                workload.size() / secs, secs);
  }

  struct Round {
    int threads;
    double qps;
    bool identical;
    std::string stats_json;
  };
  std::vector<Round> rounds;

  for (int threads : cfg.threads) {
    QueryEngine engine(dataset, {.num_threads = threads});
    std::vector<QuerySpec> specs;
    specs.reserve(workload.size());
    for (const auto& entry : workload) {
      NncOptions options;
      options.op = cfg.op;
      options.exclude_id = entry.seeded_from;
      QuerySpec spec;
      spec.query = entry.query;
      spec.options = options;
      specs.push_back(std::move(spec));
    }
    const auto t0 = std::chrono::steady_clock::now();
    auto tickets = engine.SubmitBatch(std::move(specs));
    engine.Drain();
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();

    bool identical = true;
    for (size_t i = 0; i < tickets.size(); ++i) {
      if (tickets[i]->status() != QueryStatus::kOk ||
          tickets[i]->result().candidates != serial[i]) {
        identical = false;
        std::fprintf(stderr, "MISMATCH at query %zu (threads=%d)\n", i,
                     threads);
        break;
      }
    }
    const double qps = workload.size() / secs;
    std::printf("  threads=%-2d  %8.1f q/s (%.3f s)  identical=%s\n",
                threads, qps, secs, identical ? "yes" : "NO");
    rounds.push_back({threads, qps, identical, engine.Snapshot().ToJson()});
  }

  double base_qps = 0.0, best_qps = 0.0;
  bool all_identical = true;
  for (const Round& r : rounds) {
    if (r.threads == 1) base_qps = r.qps;
    if (r.qps > best_qps) best_qps = r.qps;
    all_identical = all_identical && r.identical;
  }
  if (base_qps > 0.0) {
    std::printf("  speedup best-vs-1: %.2fx, identical=%s\n",
                best_qps / base_qps, all_identical ? "yes" : "NO");
  }

  std::FILE* f = std::fopen(cfg.out.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", cfg.out.c_str());
    return 1;
  }
  std::fprintf(f,
               "{\"bench\":\"engine_throughput\",\"objects\":%d,"
               "\"queries\":%d,\"operator\":\"%s\",\"identical\":%s,"
               "\"rounds\":[",
               cfg.objects, cfg.queries, OperatorName(cfg.op),
               all_identical ? "true" : "false");
  for (size_t i = 0; i < rounds.size(); ++i) {
    std::fprintf(f, "%s{\"threads\":%d,\"qps\":%.2f,\"identical\":%s,"
                 "\"engine\":%s}",
                 i == 0 ? "" : ",", rounds[i].threads, rounds[i].qps,
                 rounds[i].identical ? "true" : "false",
                 rounds[i].stats_json.c_str());
  }
  std::fprintf(f, "]}\n");
  std::fclose(f);
  std::printf("  wrote %s\n", cfg.out.c_str());
  return all_identical ? 0 : 1;
}
