// Read throughput under concurrent write load, plus fold latency vs.
// delta size — the cost of the epoch-snapshot machinery (ISSUE 8).
//
// Usage:
//   dynamic_throughput [--objects N] [--readers R] [--seconds S]
//                      [--write-rates 0,500,5000] [--out BENCH_dynamic.json]
//
// Part 1: for every target write rate (mutation ops/sec, 0 = static
// baseline) a fresh QueryEngine with the background fold thread enabled
// serves R synchronous reader threads for S seconds while a writer
// streams insert/delete batches through VersionedDataset::Apply at the
// target rate. Writes land in a far-away region so they never disturb
// the reader queries' candidate sets; what the bench measures is the
// snapshot/pin/fold overhead, not answer churn. Reported per round:
// read q/s, latency percentiles, achieved write ops/s, epochs and folds.
//
// Part 2: synchronous Fold() wall time as a function of delta size, on a
// store seeded with the same base.
//
// Results land in BENCH_dynamic.json; exit is non-zero if any query or
// admissible mutation failed.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "engine/query_engine.h"
#include "object/versioned_dataset.h"

namespace {

using namespace osd;
using namespace osd::bench;

struct Config {
  int objects = 4000;
  int readers = 4;
  double seconds = 1.5;
  std::vector<int> write_rates = {0, 500, 5000};
  std::vector<int> fold_deltas = {256, 1024, 4096};
  std::string out = "BENCH_dynamic.json";
};

Config ParseArgs(int argc, char** argv) {
  Config cfg;
  auto parse_list = [](const std::string& v) {
    std::vector<int> out;
    for (size_t pos = 0; pos < v.size();) {
      const size_t comma = v.find(',', pos);
      out.push_back(std::atoi(v.substr(pos, comma - pos).c_str()));
      pos = comma == std::string::npos ? v.size() : comma + 1;
    }
    return out;
  };
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", flag.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (flag == "--objects") {
      cfg.objects = std::atoi(value().c_str());
    } else if (flag == "--readers") {
      cfg.readers = std::atoi(value().c_str());
    } else if (flag == "--seconds") {
      cfg.seconds = std::atof(value().c_str());
    } else if (flag == "--write-rates") {
      cfg.write_rates = parse_list(value());
    } else if (flag == "--fold-deltas") {
      cfg.fold_deltas = parse_list(value());
    } else if (flag == "--out") {
      cfg.out = value();
    } else {
      std::fprintf(stderr, "unknown flag %s\n", flag.c_str());
      std::exit(2);
    }
  }
  return cfg;
}

double Percentile(std::vector<double>& v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  size_t idx = static_cast<size_t>(p * (v.size() - 1));
  return v[idx];
}

/// A fresh far-region object: 1-3 instances ~1e6 away from the synthetic
/// data, so reader candidate sets are untouched by the write stream.
std::shared_ptr<const UncertainObject> FarObject(int id, int dim,
                                                 uint64_t* rng) {
  auto next = [&]() {
    *rng = *rng * 6364136223846793005ULL + 1442695040888963407ULL;
    return static_cast<uint32_t>(*rng >> 33);
  };
  const int rows = 1 + static_cast<int>(next() % 3);
  std::vector<double> coords;
  coords.reserve(static_cast<size_t>(rows) * dim);
  for (int r = 0; r < rows; ++r) {
    for (int d = 0; d < dim; ++d) {
      coords.push_back(1e6 + static_cast<double>(next() % 10000) / 100.0);
    }
  }
  return std::make_shared<const UncertainObject>(
      UncertainObject::Uniform(id, dim, std::move(coords)));
}

struct ReaderStats {
  long completed = 0;
  long errors = 0;
  std::vector<double> latency_ms;
};

struct WriterStats {
  long applied = 0;       // mutation ops accepted
  long rejected = 0;      // Apply() refusals (should stay 0 here)
  std::vector<double> apply_ms;
};

struct Round {
  int write_rate;
  double read_qps = 0.0;
  double p50 = 0.0, p95 = 0.0, p99 = 0.0;
  double write_ops_per_s = 0.0;
  double apply_p95 = 0.0;
  long errors = 0;
  VersionedDataset::Stats store;
};

void ReaderLoop(QueryEngine* engine,
                const std::vector<QueryWorkloadEntry>* workload, int offset,
                const std::atomic<bool>* stop, ReaderStats* stats) {
  size_t next = static_cast<size_t>(offset) % workload->size();
  while (!stop->load(std::memory_order_relaxed)) {
    const QueryWorkloadEntry& entry = (*workload)[next];
    next = (next + 1) % workload->size();
    NncOptions options;
    options.op = Operator::kSSd;
    options.exclude_id = entry.seeded_from;
    QuerySpec spec;
    spec.query = entry.query;
    spec.options = options;
    const auto t0 = std::chrono::steady_clock::now();
    auto ticket = engine->Submit(spec);
    const QueryStatus status = ticket->Wait();
    const double ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - t0)
            .count();
    if (status == QueryStatus::kOk || status == QueryStatus::kOkDegraded) {
      ++stats->completed;
      stats->latency_ms.push_back(ms);
    } else {
      ++stats->errors;
    }
  }
}

void WriterLoop(VersionedDataset* store, int dim, int ops_per_sec,
                const std::atomic<bool>* stop, WriterStats* stats) {
  constexpr int kBatch = 8;
  uint64_t rng = 0x9e3779b97f4a7c15ULL;
  int next_id = 1'000'000;
  std::deque<int> backlog;  // live far-region ids, oldest first
  const auto start = std::chrono::steady_clock::now();
  long paced = 0;  // ops this loop has "earned" the right to send
  while (!stop->load(std::memory_order_relaxed)) {
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    const long budget = static_cast<long>(elapsed * ops_per_sec);
    if (paced + kBatch > budget) {
      std::this_thread::sleep_for(std::chrono::microseconds(200));
      continue;
    }
    std::vector<Mutation> ops;
    ops.reserve(kBatch);
    while (static_cast<int>(ops.size()) < kBatch) {
      if (backlog.size() > 64) {
        Mutation del;
        del.kind = Mutation::Kind::kDelete;
        del.id = backlog.front();
        backlog.pop_front();
        ops.push_back(std::move(del));
      } else {
        Mutation ins;
        ins.kind = Mutation::Kind::kInsert;
        ins.id = next_id++;
        ins.object = FarObject(ins.id, dim, &rng);
        backlog.push_back(ins.id);
        ops.push_back(std::move(ins));
      }
    }
    std::string error;
    const auto t0 = std::chrono::steady_clock::now();
    const bool ok = store->Apply(std::move(ops), &error);
    stats->apply_ms.push_back(
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - t0)
            .count());
    if (ok) {
      stats->applied += kBatch;
    } else {
      ++stats->rejected;
      std::fprintf(stderr, "writer: Apply rejected: %s\n", error.c_str());
    }
    paced += kBatch;
  }
}

}  // namespace

int main(int argc, char** argv) {
  const Config cfg = ParseArgs(argc, argv);

  SyntheticParams sp = DefaultSynthetic(CenterDistribution::kAntiCorrelated);
  sp.num_objects = cfg.objects;
  const Dataset dataset = GenerateSynthetic(sp);
  const int dim = sp.dim;

  WorkloadParams wp = DefaultWorkload();
  wp.num_queries = 64;
  const auto workload = GenerateWorkload(dataset, wp);

  std::printf("dynamic_throughput: %d objects, %d readers, %.1fs rounds\n",
              cfg.objects, cfg.readers, cfg.seconds);

  long total_errors = 0;
  std::vector<Round> rounds;
  for (int rate : cfg.write_rates) {
    QueryEngine engine(dataset, {.num_threads = cfg.readers});
    engine.versioned().StartFoldThread(/*interval_s=*/0.05,
                                       /*delta_threshold=*/512);

    std::atomic<bool> stop{false};
    std::vector<ReaderStats> reader_stats(cfg.readers);
    WriterStats writer_stats;
    std::vector<std::thread> threads;
    threads.reserve(cfg.readers + 1);
    for (int r = 0; r < cfg.readers; ++r) {
      threads.emplace_back(ReaderLoop, &engine, &workload, r * 7, &stop,
                           &reader_stats[r]);
    }
    if (rate > 0) {
      threads.emplace_back(WriterLoop, &engine.versioned(), dim, rate, &stop,
                           &writer_stats);
    }

    const auto t0 = std::chrono::steady_clock::now();
    std::this_thread::sleep_for(
        std::chrono::duration<double>(cfg.seconds));
    stop.store(true, std::memory_order_relaxed);
    for (auto& t : threads) t.join();
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    engine.Drain();
    engine.versioned().StopFoldThread();

    Round round;
    round.write_rate = rate;
    std::vector<double> latency;
    for (const ReaderStats& rs : reader_stats) {
      round.read_qps += rs.completed;
      round.errors += rs.errors;
      latency.insert(latency.end(), rs.latency_ms.begin(),
                     rs.latency_ms.end());
    }
    round.read_qps /= secs;
    round.p50 = Percentile(latency, 0.50);
    round.p95 = Percentile(latency, 0.95);
    round.p99 = Percentile(latency, 0.99);
    round.write_ops_per_s = writer_stats.applied / secs;
    round.apply_p95 = Percentile(writer_stats.apply_ms, 0.95);
    round.errors += writer_stats.rejected;
    round.store = engine.versioned().GetStats();
    total_errors += round.errors;

    std::printf(
        "  writes=%-5d  read %8.1f q/s  p50=%.2fms p95=%.2fms  "
        "wrote %7.0f ops/s (apply p95=%.3fms)  epoch=%llu folds=%llu\n",
        rate, round.read_qps, round.p50, round.p95, round.write_ops_per_s,
        round.apply_p95,
        static_cast<unsigned long long>(round.store.epoch),
        static_cast<unsigned long long>(round.store.folds));
    rounds.push_back(std::move(round));
  }

  // Part 2: synchronous fold latency vs. delta size.
  struct FoldPoint {
    int delta;
    double fold_ms;
  };
  std::vector<FoldPoint> fold_points;
  for (int delta : cfg.fold_deltas) {
    VersionedDataset store(dataset);
    uint64_t rng = 0xc0ffee ^ static_cast<uint64_t>(delta);
    int next_id = 2'000'000;
    for (int done = 0; done < delta;) {
      const int batch = std::min(256, delta - done);
      std::vector<Mutation> ops;
      ops.reserve(batch);
      for (int i = 0; i < batch; ++i) {
        Mutation ins;
        ins.kind = Mutation::Kind::kInsert;
        ins.id = next_id++;
        ins.object = FarObject(ins.id, dim, &rng);
        ops.push_back(std::move(ins));
      }
      std::string error;
      if (!store.Apply(std::move(ops), &error)) {
        std::fprintf(stderr, "fold bench: Apply rejected: %s\n",
                     error.c_str());
        ++total_errors;
        break;
      }
      done += batch;
    }
    const auto t0 = std::chrono::steady_clock::now();
    store.Fold();
    const double ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - t0)
            .count();
    std::printf("  fold: delta=%-5d  %8.2f ms\n", delta, ms);
    fold_points.push_back({delta, ms});
  }

  std::FILE* f = std::fopen(cfg.out.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", cfg.out.c_str());
    return 1;
  }
  std::fprintf(f,
               "{\"bench\":\"dynamic_throughput\",\"objects\":%d,"
               "\"readers\":%d,\"seconds\":%.2f,\"rounds\":[",
               cfg.objects, cfg.readers, cfg.seconds);
  for (size_t i = 0; i < rounds.size(); ++i) {
    const Round& r = rounds[i];
    std::fprintf(f,
                 "%s{\"write_rate\":%d,\"read_qps\":%.2f,\"p50_ms\":%.3f,"
                 "\"p95_ms\":%.3f,\"p99_ms\":%.3f,\"write_ops_per_s\":%.1f,"
                 "\"apply_p95_ms\":%.3f,\"errors\":%ld,\"epoch\":%llu,"
                 "\"folds\":%llu,\"mutations\":%llu}",
                 i == 0 ? "" : ",", r.write_rate, r.read_qps, r.p50, r.p95,
                 r.p99, r.write_ops_per_s, r.apply_p95, r.errors,
                 static_cast<unsigned long long>(r.store.epoch),
                 static_cast<unsigned long long>(r.store.folds),
                 static_cast<unsigned long long>(r.store.mutations));
  }
  std::fprintf(f, "],\"fold_latency\":[");
  for (size_t i = 0; i < fold_points.size(); ++i) {
    std::fprintf(f, "%s{\"delta\":%d,\"fold_ms\":%.3f}", i == 0 ? "" : ",",
                 fold_points[i].delta, fold_points[i].fold_ms);
  }
  std::fprintf(f, "]}\n");
  std::fclose(f);
  std::printf("  wrote %s\n", cfg.out.c_str());
  return total_errors == 0 ? 0 : 1;
}
