// Figure 14: the progressive property of Algorithm 1 on the USA dataset
// with PSD. (a) elapsed time when x% of the candidates have been
// returned; (b) candidate quality -- the average number of objects
// dominated by the candidates returned so far.
//
// Paper shape to reproduce: the first 20% of candidates arrive almost
// immediately and ~70% arrive in half the total time; earlier candidates
// dominate more objects (higher quality).

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "datagen/surrogates.h"

int main() {
  std::setvbuf(stdout, nullptr, _IOLBF, 0);
  using namespace osd;
  using namespace osd::bench;

  const Dataset usa = UsaLike(30'000, 10, 400.0, 1);
  auto wp = DefaultWorkload();
  wp.num_queries = 4;
  const auto workload = GenerateWorkload(usa, wp);

  // Per-decile accumulators over the workload.
  double time_at[10] = {0};
  double quality_at[10] = {0};
  int runs = 0;

  Rng sample_rng(5);
  std::vector<int> sample;  // objects used to estimate dominance counts
  for (int s = 0; s < 400; ++s) {
    sample.push_back(static_cast<int>(sample_rng.UniformInt(0, usa.size() - 1)));
  }

  for (const auto& entry : workload) {
    NncOptions options;
    options.op = Operator::kPSd;
    options.exclude_id = entry.seeded_from;
    const NncResult result = NncSearch(usa, options).Run(entry.query);
    const size_t total = result.timeline.size();
    if (total == 0) continue;
    ++runs;

    // (a) time at each decile of returned candidates.
    for (int dec = 1; dec <= 10; ++dec) {
      const size_t idx =
          std::min(total - 1, (total * dec) / 10 == 0 ? 0 : (total * dec) / 10 - 1);
      time_at[dec - 1] +=
          result.timeline[idx].elapsed_seconds / result.seconds * 100.0;
    }

    // (b) quality: avg #sampled objects dominated by candidates returned
    // in each decile (estimated on the sample, scaled to dataset size).
    QueryContext ctx(entry.query);
    FilterStats stats;
    DominanceOracle oracle(ctx, FilterConfig::All(), &stats);
    std::vector<double> dominated_counts;
    for (const auto& emission : result.timeline) {
      ObjectProfile cand(usa.object(emission.object_id), ctx, &stats);
      int dominated = 0;
      for (int id : sample) {
        if (id == emission.object_id || id == entry.seeded_from) continue;
        ObjectProfile other(usa.object(id), ctx, &stats);
        if (oracle.Dominates(Operator::kPSd, cand, other)) ++dominated;
      }
      dominated_counts.push_back(static_cast<double>(dominated) /
                                 sample.size() * usa.size());
    }
    for (int dec = 1; dec <= 10; ++dec) {
      const size_t upto = std::max<size_t>(1, (total * dec) / 10);
      double avg = 0.0;
      for (size_t i = 0; i < upto; ++i) avg += dominated_counts[i];
      quality_at[dec - 1] += avg / upto;
    }
  }

  std::printf("=== Figure 14: progressive property (PSD on USA) ===\n\n");
  std::printf("%-10s %22s %26s\n", "progress",
              "(a) %% of total time", "(b) avg objects dominated");
  for (int dec = 1; dec <= 10; ++dec) {
    std::printf("%9d%% %21.1f%% %26.1f\n", dec * 10,
                time_at[dec - 1] / runs, quality_at[dec - 1] / runs);
  }
  return 0;
}
