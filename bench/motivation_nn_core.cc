// Motivation experiment (paper Section 1 / Remark 1): how often does the
// NN-core [Yuen et al. 2010] miss the actual NN object of a popular NN
// function? The spatial-dominance NNC sets never miss (Theorems 5-7);
// NN-core has no such guarantee and the paper therefore excludes it from
// the evaluation. This bench quantifies the motivating claim.

#include <algorithm>
#include <cstdio>
#include <set>
#include <vector>

#include "bench_util.h"
#include "core/nn_core.h"
#include "nnfun/n1_functions.h"
#include "nnfun/n3_functions.h"

int main() {
  std::setvbuf(stdout, nullptr, _IOLBF, 0);
  using namespace osd;
  using namespace osd::bench;

  auto params = DefaultSynthetic(CenterDistribution::kAntiCorrelated);
  params.num_objects = 400;   // small n keeps the O(n^2) core affordable
  params.object_edge = 1'200.0;  // heavy overlap -> interesting cores
  params.instances_per_object = 10;
  const Dataset dataset = GenerateSynthetic(params);
  auto wp = DefaultWorkload();
  wp.num_queries = 20;
  wp.query_instances = 10;
  const auto workload = GenerateWorkload(dataset, wp);

  struct Fn {
    const char* name;
    double (*score)(const UncertainObject&, const UncertainObject&);
  };
  const Fn kFns[] = {
      {"min", [](const UncertainObject& u, const UncertainObject& q) {
         return MinDistance(u, q);
       }},
      {"mean", [](const UncertainObject& u, const UncertainObject& q) {
         return ExpectedDistance(u, q);
       }},
      {"max", [](const UncertainObject& u, const UncertainObject& q) {
         return MaxDistance(u, q);
       }},
      {"quan0.3", [](const UncertainObject& u, const UncertainObject& q) {
         return QuantileDistance(u, q, 0.3);
       }},
      {"hausdorff", [](const UncertainObject& u, const UncertainObject& q) {
         return HausdorffDistance(u, q);
       }},
      {"emd", [](const UncertainObject& u, const UncertainObject& q) {
         return EmdDistance(u, q);
       }},
  };

  int core_misses[6] = {0};
  int nnc_misses[6] = {0};
  double avg_core = 0.0, avg_nnc = 0.0;
  for (const auto& entry : workload) {
    std::vector<UncertainObject> objects;
    for (int i = 0; i < dataset.size(); ++i) {
      if (i == entry.seeded_from) continue;
      objects.push_back(dataset.object(i));
    }
    const auto core = NnCore(objects, entry.query);
    const std::set<int> core_set(core.begin(), core.end());
    avg_core += static_cast<double>(core.size());

    const Dataset sub(objects);
    NncOptions options;
    options.op = Operator::kPSd;
    const auto nnc = NncSearch(sub, options).Run(entry.query).candidates;
    const std::set<int> nnc_set(nnc.begin(), nnc.end());
    avg_nnc += static_cast<double>(nnc.size());

    for (int f = 0; f < 6; ++f) {
      double best = 1e300;
      int best_id = -1;
      for (size_t i = 0; i < objects.size(); ++i) {
        const double s = kFns[f].score(objects[i], entry.query);
        if (s < best) {
          best = s;
          best_id = static_cast<int>(i);
        }
      }
      if (!core_set.count(best_id)) ++core_misses[f];
      if (!nnc_set.count(best_id)) ++nnc_misses[f];
    }
  }

  std::printf("=== Motivation: NN-core vs NNC(P-SD), %zu queries ===\n\n",
              workload.size());
  std::printf("avg set size: NN-core %.1f, NNC(P-SD) %.1f\n\n",
              avg_core / workload.size(), avg_nnc / workload.size());
  std::printf("%-10s %18s %18s\n", "NN func", "NN-core misses",
              "NNC(P-SD) misses");
  for (int f = 0; f < 6; ++f) {
    std::printf("%-10s %17d%% %17d%%\n", kFns[f].name,
                core_misses[f] * 100 / static_cast<int>(workload.size()),
                nnc_misses[f] * 100 / static_cast<int>(workload.size()));
  }
  std::printf("\nNNC(P-SD) must never miss (Theorem 7); any non-zero right "
              "column is a bug.\n");
  return 0;
}
