// Figure 10: average NN-candidate count per dataset for the five
// algorithms (SSD, SSSD, PSD, FSD, F+SD).
//
// Paper shape to reproduce: SSD <= SSSD <= PSD << FSD <= F+SD on every
// dataset; the gap widens on large/overlapping data (USA, NBA, GW).

#include <cstdio>

#include "bench_util.h"
#include "datagen/surrogates.h"

int main() {
  std::setvbuf(stdout, nullptr, _IOLBF, 0);
  using namespace osd;
  using namespace osd::bench;

  struct Entry {
    const char* name;
    Dataset dataset;
  };
  std::printf("=== Figure 10: candidate size per dataset ===\n");
  std::printf("(scaled surrogates; see EXPERIMENTS.md for factors)\n\n");

  std::vector<Entry> entries;
  entries.push_back(
      {"A-N", GenerateSynthetic(
                  DefaultSynthetic(CenterDistribution::kAntiCorrelated))});
  entries.push_back(
      {"E-N",
       GenerateSynthetic(DefaultSynthetic(CenterDistribution::kIndependent))});
  entries.push_back({"HOUSE", HouseLike(1, 8'000)});
  entries.push_back({"CA", CaLike(1)});
  entries.push_back({"NBA", NbaLike(1)});
  entries.push_back({"GW", GowallaLike(1)});
  entries.push_back({"USA", UsaLike(30'000, 10, 400.0, 1)});

  PrintTableHeader("dataset");
  for (const auto& entry : entries) {
    const auto workload = GenerateWorkload(entry.dataset, DefaultWorkload());
    double row[5];
    int i = 0;
    for (Operator op : kAlgorithms) {
      row[i++] = RunNncWorkload(entry.dataset, workload, op).avg_candidates;
    }
    PrintRow(entry.name, row);
  }
  return 0;
}
