// Figure 16 (Appendix C): effectiveness of the filtering techniques.
// Average number of instance comparisons per query for SSD, SSSD and PSD
// as the number of object instances m_d grows on the HOUSE dataset, under
// six configurations:
//   BF  - no filtering (brute force)
//   L   - level-by-level R-tree filtering
//   LP  - L + statistic-based pruning
//   LG  - L + geometric (convex hull) technique
//   LGP - L + geometric + pruning
//   All - everything incl. cover-based rules
//
// Paper shape to reproduce: each added technique reduces the comparison
// count; All/LGP save 1-2 orders of magnitude over BF.

#include <cstdio>

#include "bench_util.h"
#include "datagen/surrogates.h"

int main() {
  std::setvbuf(stdout, nullptr, _IOLBF, 0);
  using namespace osd;
  using namespace osd::bench;

  const struct {
    const char* name;
    FilterConfig config;
  } kConfigs[] = {
      {"BF", FilterConfig::BruteForce()}, {"L", FilterConfig::L()},
      {"LP", FilterConfig::LP()},         {"LG", FilterConfig::LG()},
      {"LGP", FilterConfig::LGP()},       {"All", FilterConfig::All()},
  };
  const Operator kOps[] = {Operator::kSSd, Operator::kSsSd, Operator::kPSd};

  std::printf(
      "=== Figure 16: avg instance comparisons per query (HOUSE) ===\n");

  for (Operator op : kOps) {
    std::printf("\n--- %s ---\n", OperatorName(op));
    std::printf("%-6s", "m_d");
    for (const auto& c : kConfigs) std::printf(" %12s", c.name);
    std::printf("\n");
    for (int md : {20, 40, 60, 80, 100}) {
      // Smaller HOUSE surrogate so the BF column stays tractable.
      const Dataset house = HouseLike(1, 2'000, md);
      auto wp = DefaultWorkload();
      wp.num_queries = 4;
      const auto workload = GenerateWorkload(house, wp);
      std::printf("%-6d", md);
      for (const auto& c : kConfigs) {
        const WorkloadSummary s =
            RunNncWorkload(house, workload, op, c.config);
        std::printf(" %12.0f",
                    static_cast<double>(s.stats.InstanceComparisons()) /
                        s.queries);
      }
      std::printf("\n");
    }
  }
  return 0;
}
