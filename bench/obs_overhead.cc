// Observability overhead: cost of the tracing span sites and the engine
// metrics on the query hot path.
//
// Usage:
//   obs_overhead [--objects N] [--queries Q] [--rounds R]
//                [--out BENCH_obs.json]
//
// The binary runs the same serial workload twice per round — once with a
// null NncOptions::trace (the production default) and once with a per-query
// Trace attached — and reports the best queries/sec of each mode plus the
// relative overhead. When the build has tracing configured out
// (-DOSD_TRACING=OFF) both modes run the identical instruction stream, so
// the reported "untraced" figure doubles as the compiled-out baseline:
// comparing it across an ON and an OFF build measures the cost of the
// compiled-in-but-disabled span sites (target: <= 5%; compiled out the
// sites are textually absent, so <= 1% is just run-to-run noise).
// A third measurement drives the full QueryEngine with metrics recording
// to show the engine-level accounting cost in context.
//
// Modes alternate within each round so clock drift and cache warmup hit
// both equally; local trees are pre-warmed before any timing.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util.h"
#include "engine/query_engine.h"
#include "obs/trace.h"

namespace {

using namespace osd;
using namespace osd::bench;

struct Config {
  int objects = 2000;
  int queries = 96;
  int rounds = 5;
  std::string out = "BENCH_obs.json";
};

Config ParseArgs(int argc, char** argv) {
  Config cfg;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", flag.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (flag == "--objects") {
      cfg.objects = std::atoi(value().c_str());
    } else if (flag == "--queries") {
      cfg.queries = std::atoi(value().c_str());
    } else if (flag == "--rounds") {
      cfg.rounds = std::atoi(value().c_str());
    } else if (flag == "--out") {
      cfg.out = value();
    } else {
      std::fprintf(stderr, "unknown flag %s\n", flag.c_str());
      std::exit(2);
    }
  }
  return cfg;
}

double Elapsed(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  const Config cfg = ParseArgs(argc, argv);

#if defined(OSD_TRACING_ENABLED)
  const bool tracing_compiled = true;
#else
  const bool tracing_compiled = false;
#endif

  SyntheticParams sp = DefaultSynthetic(CenterDistribution::kAntiCorrelated);
  sp.num_objects = cfg.objects;
  const Dataset dataset = GenerateSynthetic(sp);

  WorkloadParams wp = DefaultWorkload();
  wp.num_queries = cfg.queries;
  const auto workload = GenerateWorkload(dataset, wp);

  std::printf("obs_overhead: %d objects, %d queries, %d rounds, tracing %s\n",
              cfg.objects, cfg.queries, cfg.rounds,
              tracing_compiled ? "compiled in" : "compiled OUT");

  auto run_serial = [&](bool traced) {
    for (const auto& entry : workload) {
      NncOptions options;
      options.op = Operator::kSSd;
      options.exclude_id = entry.seeded_from;
      obs::Trace trace;
      if (traced) options.trace = &trace;
      NncSearch(dataset, options).Run(entry.query);
    }
  };

  // Warmup: build every local tree and fault everything in, so neither
  // timed mode pays one-time costs.
  run_serial(false);

  double best_untraced_s = 0.0;
  double best_traced_s = 0.0;
  for (int r = 0; r < cfg.rounds; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    run_serial(false);
    const double untraced_s = Elapsed(t0);
    const auto t1 = std::chrono::steady_clock::now();
    run_serial(true);
    const double traced_s = Elapsed(t1);
    if (r == 0 || untraced_s < best_untraced_s) best_untraced_s = untraced_s;
    if (r == 0 || traced_s < best_traced_s) best_traced_s = traced_s;
  }
  const double qps_untraced = workload.size() / best_untraced_s;
  const double qps_traced = workload.size() / best_traced_s;
  const double overhead_pct =
      (best_traced_s / best_untraced_s - 1.0) * 100.0;
  std::printf("  untraced: %8.1f q/s\n", qps_untraced);
  std::printf("  traced:   %8.1f q/s  (overhead %+.2f%%)\n", qps_traced,
              overhead_pct);

  // Engine pass: metrics + latency histogram recording per completion.
  double engine_s = 0.0;
  {
    QueryEngine engine(dataset, {.num_threads = 1});
    std::vector<QuerySpec> specs;
    specs.reserve(workload.size());
    for (const auto& entry : workload) {
      NncOptions options;
      options.op = Operator::kSSd;
      options.exclude_id = entry.seeded_from;
      QuerySpec spec;
      spec.query = entry.query;
      spec.options = options;
      specs.push_back(std::move(spec));
    }
    const auto t0 = std::chrono::steady_clock::now();
    engine.SubmitBatch(std::move(specs));
    engine.Drain();
    engine_s = Elapsed(t0);
  }
  const double qps_engine = workload.size() / engine_s;
  std::printf("  engine(1 thread, metrics on): %8.1f q/s\n", qps_engine);

  std::FILE* f = std::fopen(cfg.out.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", cfg.out.c_str());
    return 1;
  }
  std::fprintf(f,
               "{\"bench\":\"obs_overhead\",\"objects\":%d,\"queries\":%d,"
               "\"rounds\":%d,\"tracing_compiled\":%s,"
               "\"qps_untraced\":%.2f,\"qps_traced\":%.2f,"
               "\"traced_overhead_pct\":%.3f,\"qps_engine\":%.2f}\n",
               cfg.objects, cfg.queries, cfg.rounds,
               tracing_compiled ? "true" : "false", qps_untraced, qps_traced,
               overhead_pct, qps_engine);
  std::fclose(f);
  std::printf("  wrote %s\n", cfg.out.c_str());
  return 0;
}
