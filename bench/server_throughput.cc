// Service-tier throughput: queries/sec and latency percentiles through a
// real OsdServer on loopback — framing, JSON, the poll loop and the
// engine handoff all included — at several client concurrencies.
//
// Usage:
//   server_throughput [--objects N] [--queries Q] [--op ssd|sssd|psd|fsd|f+sd]
//                     [--clients 1,2,4,8] [--threads T]
//                     [--out BENCH_server.json]
//
// Every round starts a fresh engine+server pair, fans Q queries across C
// client connections (each client runs its share synchronously:
// submit, stream, terminal frame), and reports end-to-end latency
// percentiles plus time-to-first-candidate — the metric the progressive
// protocol exists for.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "engine/query_engine.h"
#include "net/client.h"
#include "net/protocol.h"
#include "net/server.h"

namespace {

using namespace osd;
using namespace osd::bench;
using osd::net::JsonValue;
using osd::net::MessageType;
using osd::net::OsdClient;
using osd::net::OsdServer;
using osd::net::ServerOptions;
using osd::net::SubmitParams;

struct Config {
  int objects = 2000;
  int queries = 256;
  std::string op = "ssd";
  std::vector<int> clients = {1, 2, 4, 8};
  int threads = 4;
  std::string out = "BENCH_server.json";
};

Config ParseArgs(int argc, char** argv) {
  Config cfg;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", flag.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (flag == "--objects") {
      cfg.objects = std::atoi(value().c_str());
    } else if (flag == "--queries") {
      cfg.queries = std::atoi(value().c_str());
    } else if (flag == "--op") {
      cfg.op = value();
    } else if (flag == "--threads") {
      cfg.threads = std::atoi(value().c_str());
    } else if (flag == "--clients") {
      cfg.clients.clear();
      const std::string v = value();
      for (size_t pos = 0; pos < v.size();) {
        const size_t comma = v.find(',', pos);
        cfg.clients.push_back(std::atoi(v.substr(pos, comma - pos).c_str()));
        pos = comma == std::string::npos ? v.size() : comma + 1;
      }
    } else if (flag == "--out") {
      cfg.out = value();
    } else {
      std::fprintf(stderr, "unknown flag %s\n", flag.c_str());
      std::exit(2);
    }
  }
  return cfg;
}

/// Latencies one client thread collected, all in milliseconds.
struct ClientStats {
  std::vector<double> total_ms;  ///< submit -> terminal frame
  std::vector<double> ttfc_ms;   ///< submit -> first candidate frame
  long errors = 0;
};

double Percentile(std::vector<double>& v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const size_t idx = static_cast<size_t>(p * (v.size() - 1) + 0.5);
  return v[std::min(idx, v.size() - 1)];
}

void RunClient(int port, const std::string& op, int first, int count,
               int objects, ClientStats* stats) {
  OsdClient client;
  std::string error;
  if (!client.Connect("127.0.0.1", port, "bench", &error)) {
    std::fprintf(stderr, "connect failed: %s\n", error.c_str());
    stats->errors += count;
    return;
  }
  for (int q = 0; q < count; ++q) {
    SubmitParams params;
    params.id = q + 1;
    params.object_id = (first + q) % objects;
    params.op = op;
    const auto t0 = std::chrono::steady_clock::now();
    if (!client.Send(net::BuildSubmitMessage(params), &error)) {
      ++stats->errors;
      return;
    }
    bool first_candidate = true;
    for (;;) {
      JsonValue msg;
      if (!client.Read(&msg, &error)) {
        ++stats->errors;
        return;
      }
      const auto now = std::chrono::steady_clock::now();
      const double ms =
          std::chrono::duration<double, std::milli>(now - t0).count();
      const std::string type = MessageType(msg);
      if (type == "candidate") {
        if (first_candidate) {
          stats->ttfc_ms.push_back(ms);
          first_candidate = false;
        }
      } else if (type == "result") {
        if (msg.Find("status")->AsString() != "OK") ++stats->errors;
        stats->total_ms.push_back(ms);
        break;
      } else {  // error frame: the query is over
        ++stats->errors;
        break;
      }
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  const Config cfg = ParseArgs(argc, argv);

  SyntheticParams sp = DefaultSynthetic(CenterDistribution::kAntiCorrelated);
  sp.num_objects = cfg.objects;
  const Dataset dataset = GenerateSynthetic(sp);

  std::printf(
      "server_throughput: %d objects, %d queries, operator %s, "
      "%d engine threads\n",
      cfg.objects, cfg.queries, cfg.op.c_str(), cfg.threads);

  struct Round {
    int clients;
    double qps;
    double p50, p95, p99;
    double ttfc_p50;
    long errors;
  };
  std::vector<Round> rounds;

  for (int clients : cfg.clients) {
    QueryEngine engine(dataset,
                       {.num_threads = cfg.threads, .shed_on_overload = true});
    OsdServer server(&engine, ServerOptions{});
    std::string error;
    if (!server.Start(&error)) {
      std::fprintf(stderr, "server start failed: %s\n", error.c_str());
      return 1;
    }

    const int per_client = cfg.queries / clients;
    std::vector<ClientStats> stats(static_cast<size_t>(clients));
    std::vector<std::thread> threads;
    const auto t0 = std::chrono::steady_clock::now();
    for (int c = 0; c < clients; ++c) {
      threads.emplace_back(RunClient, server.port(), cfg.op, c * per_client,
                           per_client, cfg.objects,
                           &stats[static_cast<size_t>(c)]);
    }
    for (auto& t : threads) t.join();
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    server.Shutdown();

    std::vector<double> total, ttfc;
    long errors = 0;
    for (const ClientStats& s : stats) {
      total.insert(total.end(), s.total_ms.begin(), s.total_ms.end());
      ttfc.insert(ttfc.end(), s.ttfc_ms.begin(), s.ttfc_ms.end());
      errors += s.errors;
    }
    const double qps = static_cast<double>(total.size()) / secs;
    Round r;
    r.clients = clients;
    r.qps = qps;
    r.p50 = Percentile(total, 0.50);
    r.p95 = Percentile(total, 0.95);
    r.p99 = Percentile(total, 0.99);
    r.ttfc_p50 = Percentile(ttfc, 0.50);
    r.errors = errors;
    rounds.push_back(r);
    std::printf(
        "  clients=%-2d  %8.1f q/s  p50=%.2fms p95=%.2fms p99=%.2fms  "
        "ttfc_p50=%.2fms  errors=%ld\n",
        clients, qps, r.p50, r.p95, r.p99, r.ttfc_p50, errors);
  }

  long total_errors = 0;
  for (const Round& r : rounds) total_errors += r.errors;

  std::FILE* f = std::fopen(cfg.out.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", cfg.out.c_str());
    return 1;
  }
  std::fprintf(f,
               "{\"bench\":\"server_throughput\",\"objects\":%d,"
               "\"queries\":%d,\"operator\":\"%s\",\"engine_threads\":%d,"
               "\"errors\":%ld,\"rounds\":[",
               cfg.objects, cfg.queries, cfg.op.c_str(), cfg.threads,
               total_errors);
  for (size_t i = 0; i < rounds.size(); ++i) {
    const Round& r = rounds[i];
    std::fprintf(f,
                 "%s{\"clients\":%d,\"qps\":%.2f,\"p50_ms\":%.3f,"
                 "\"p95_ms\":%.3f,\"p99_ms\":%.3f,\"ttfc_p50_ms\":%.3f,"
                 "\"errors\":%ld}",
                 i == 0 ? "" : ",", r.clients, r.qps, r.p50, r.p95, r.p99,
                 r.ttfc_p50, r.errors);
  }
  std::fprintf(f, "]}\n");
  std::fclose(f);
  std::printf("  wrote %s\n", cfg.out.c_str());
  return total_errors == 0 ? 0 : 1;
}
