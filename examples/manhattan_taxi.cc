// Dispatching under Manhattan distance: find candidate nearest taxis.
//
// Taxis report noisy/multi-hypothesis positions (an uncertain object per
// taxi); street travel follows the L1 metric. A dispatcher wants a
// shortlist guaranteed to contain the k nearest taxis under ANY covered
// ranking (expected L1 distance, quantiles, likely-nearest, ...), then
// makes the final call with a specific function.
//
// Demonstrates the two library extensions working together: the L1 metric
// (where the convex-hull filter degrades safely) and k-candidates.
//
//   ./build/examples/manhattan_taxi

#include <algorithm>
#include <cstdio>
#include <vector>

#include "common/rng.h"
#include "core/nnc_search.h"
#include "nnfun/n1_functions.h"
#include "nnfun/rank_engine.h"

int main() {
  using namespace osd;
  Rng rng(1001);

  // A 100x100-block city; 800 taxis, each with 3-6 position hypotheses
  // (GPS multipath in street canyons).
  const int kTaxis = 800;
  std::vector<UncertainObject> taxis;
  for (int id = 0; id < kTaxis; ++id) {
    const double bx = rng.Uniform(0.0, 100.0);
    const double by = rng.Uniform(0.0, 100.0);
    const int hypotheses = 3 + static_cast<int>(rng.UniformInt(0, 3));
    std::vector<double> coords;
    std::vector<double> weights;
    for (int h = 0; h < hypotheses; ++h) {
      coords.push_back(bx + rng.Normal(0.0, 1.5));
      coords.push_back(by + rng.Normal(0.0, 1.5));
      weights.push_back(rng.Uniform(0.5, 2.0));  // hypothesis confidence
    }
    taxis.push_back(
        UncertainObject::FromWeighted(id, 2, std::move(coords), std::move(weights)));
  }
  const Dataset fleet(std::move(taxis));

  // The rider is also uncertain: a pickup zone with 3 possible corners.
  const UncertainObject rider = UncertainObject::Uniform(
      -1, 2, {50.0, 50.0, 50.4, 50.0, 50.0, 50.6});

  const int k = 3;
  NncOptions options;
  options.op = Operator::kSsSd;   // covers all possible-world rankings
  options.metric = Metric::kL1;   // street distance
  options.k = k;
  const NncResult shortlist = NncSearch(fleet, options).Run(rider);
  std::printf("fleet: %d taxis; k=%d shortlist under L1 SS-SD: %zu taxis "
              "(%.2f ms)\n\n",
              fleet.size(), k, shortlist.candidates.size(),
              shortlist.seconds * 1e3);

  // Rank the shortlist by expected street distance...
  std::vector<std::pair<double, int>> by_mean;
  for (int id : shortlist.candidates) {
    by_mean.emplace_back(
        ExpectedDistance(fleet.object(id), rider, Metric::kL1), id);
  }
  std::sort(by_mean.begin(), by_mean.end());
  std::printf("by expected L1 distance:\n");
  for (int i = 0; i < 5 && i < static_cast<int>(by_mean.size()); ++i) {
    std::printf("  taxi %-5d %.2f blocks\n", by_mean[i].second,
                by_mean[i].first);
  }

  // ... and by the probability of actually being the nearest (exact,
  // polynomial-time rank engine over the shortlist).
  std::vector<const UncertainObject*> ptrs;
  for (int id : shortlist.candidates) ptrs.push_back(&fleet.object(id));
  const RankEngine ranks(ptrs, rider, Metric::kL1);
  std::vector<std::pair<double, int>> by_prob;
  for (size_t i = 0; i < ptrs.size(); ++i) {
    by_prob.emplace_back(ranks.RankProbability(static_cast<int>(i), 1),
                         ptrs[i]->id());
  }
  std::sort(by_prob.rbegin(), by_prob.rend());
  std::printf("\nby probability of being nearest:\n");
  for (int i = 0; i < 5 && i < static_cast<int>(by_prob.size()); ++i) {
    std::printf("  taxi %-5d Pr = %.3f\n", by_prob[i].second,
                by_prob[i].first);
  }
  std::printf("\nboth rankings' top-%d are guaranteed inside the shortlist "
              "(k-candidate property).\n", k);
  return 0;
}
