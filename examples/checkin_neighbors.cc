// Location-based social search over uncertain user locations.
//
// Each user is an uncertain object whose instances are historical
// check-ins (the paper's Gowalla scenario): the user's "location" is a
// discrete distribution. Given a new event venue (the query), we compute
// the users most likely to be nearby. Possible-world functions like NN
// probability are covered by SS-SD, so NNC(SS-SD) is the exact shortlist
// for *every* such ranking; we then estimate NN probabilities for the
// shortlist by Monte Carlo.
//
//   ./build/examples/checkin_neighbors

#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/nnc_search.h"
#include "datagen/surrogates.h"
#include "nnfun/n2_functions.h"
#include "nnfun/possible_worlds.h"

int main() {
  using namespace osd;

  const Dataset users = GowallaLike(/*seed=*/7);
  std::printf("users: %d (2-d check-in histories)\n", users.size());

  // The venue is known only as a small area (4 possible entrances).
  const UncertainObject venue = UncertainObject::Uniform(
      -1, 2,
      {5'000.0, 5'000.0, 5'060.0, 5'000.0, 5'000.0, 5'060.0, 5'060.0,
       5'060.0});

  NncOptions options;
  options.op = Operator::kSsSd;
  std::vector<std::pair<int, double>> stream;  // progressive emissions
  const NncResult result =
      NncSearch(users, options)
          .Run(venue, [&](int id, double elapsed) {
            stream.emplace_back(id, elapsed);
          });
  std::printf("SS-SD candidates: %zu of %d users (%.1f ms total)\n",
              result.candidates.size(), users.size(), result.seconds * 1e3);
  if (!stream.empty()) {
    std::printf("first candidate streamed after %.2f ms (progressive)\n",
                stream.front().second * 1e3);
  }

  // Monte-Carlo NN probabilities among the shortlisted users.
  std::vector<const UncertainObject*> shortlist;
  for (int id : result.candidates) shortlist.push_back(&users.object(id));
  if (shortlist.size() > 24) shortlist.resize(24);  // keep the demo quick
  Rng rng(123);
  const auto worlds =
      PossibleWorldEngine::Sampled(shortlist, venue, 50'000, rng);
  std::vector<std::pair<double, int>> ranked;
  for (size_t i = 0; i < shortlist.size(); ++i) {
    ranked.emplace_back(NnProbability(worlds, static_cast<int>(i)),
                        shortlist[i]->id());
  }
  std::sort(ranked.rbegin(), ranked.rend());
  std::printf("\nmost-likely-nearest users (NN probability, MC estimate):\n");
  for (int i = 0; i < 5 && i < static_cast<int>(ranked.size()); ++i) {
    std::printf("  user %-6d Pr[nearest] = %.3f\n", ranked[i].second,
                ranked[i].first);
  }
  return 0;
}
