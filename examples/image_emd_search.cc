// Content-based image retrieval with Earth Mover's Distance.
//
// An image is summarized by a signature: a set of feature points (e.g.
// dominant colors in a 3-d color space) with weights -- a classic
// multi-instance object. EMD is the standard signature distance, and it
// belongs to the selected-pairs family N3, so P-SD's candidate set is the
// exact index-level shortlist: the EMD nearest neighbor is provably inside
// and everything outside is provably not the EMD-NN (nor the NN for any
// other covered function).
//
//   ./build/examples/image_emd_search

#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/nnc_search.h"
#include "common/rng.h"
#include "nnfun/n3_functions.h"

int main() {
  using namespace osd;
  Rng rng(4321);

  // Synthetic gallery: 4,000 "images", each a signature of 4-8 weighted
  // color clusters in a 3-d color cube scaled to [0, 10000].
  const int kGallery = 4'000;
  std::vector<UncertainObject> gallery;
  for (int id = 0; id < kGallery; ++id) {
    const int clusters = 4 + static_cast<int>(rng.UniformInt(0, 4));
    // Images concentrate around a palette theme (warm / cool / mixed).
    Point theme{rng.Uniform(1'000.0, 9'000.0), rng.Uniform(1'000.0, 9'000.0),
                rng.Uniform(1'000.0, 9'000.0)};
    std::vector<double> coords;
    std::vector<double> weights;
    for (int c = 0; c < clusters; ++c) {
      for (int d = 0; d < 3; ++d) {
        coords.push_back(theme[d] + rng.Normal(0.0, 900.0));
      }
      weights.push_back(rng.Uniform(0.2, 1.0));  // cluster pixel share
    }
    gallery.push_back(
        UncertainObject::FromWeighted(id, 3, std::move(coords), std::move(weights)));
  }
  const Dataset dataset(std::move(gallery));

  // Query image signature.
  std::vector<double> qcoords;
  std::vector<double> qweights;
  for (int c = 0; c < 5; ++c) {
    qcoords.push_back(4'500.0 + rng.Normal(0.0, 700.0));
    qcoords.push_back(3'000.0 + rng.Normal(0.0, 700.0));
    qcoords.push_back(6'000.0 + rng.Normal(0.0, 700.0));
    qweights.push_back(rng.Uniform(0.2, 1.0));
  }
  const UncertainObject query =
      UncertainObject::FromWeighted(-1, 3, qcoords, qweights);

  // Stage 1: P-SD candidates (index-level, no EMD computed yet).
  NncOptions options;
  options.op = Operator::kPSd;
  const NncResult shortlist = NncSearch(dataset, options).Run(query);
  std::printf("gallery: %d images; P-SD shortlist: %zu (%.1f ms)\n",
              dataset.size(), shortlist.candidates.size(),
              shortlist.seconds * 1e3);

  // Stage 2: exact EMD only on the shortlist.
  std::vector<std::pair<double, int>> ranked;
  for (int id : shortlist.candidates) {
    ranked.emplace_back(EmdDistance(dataset.object(id), query), id);
  }
  std::sort(ranked.begin(), ranked.end());
  std::printf("top matches by EMD:\n");
  for (int i = 0; i < 5 && i < static_cast<int>(ranked.size()); ++i) {
    std::printf("  image %-6d EMD = %.1f\n", ranked[i].second,
                ranked[i].first);
  }

  // Cross-check the guarantee on a sample: no pruned image beats the best
  // shortlisted EMD.
  const double best = ranked.empty() ? 0.0 : ranked.front().first;
  Rng check_rng(1);
  int checked = 0;
  for (int t = 0; t < 200; ++t) {
    const int id = static_cast<int>(check_rng.UniformInt(0, dataset.size() - 1));
    if (std::find(shortlist.candidates.begin(), shortlist.candidates.end(),
                  id) != shortlist.candidates.end()) {
      continue;
    }
    ++checked;
    if (EmdDistance(dataset.object(id), query) < best - 1e-6) {
      std::printf("GUARANTEE VIOLATED by image %d\n", id);
      return 1;
    }
  }
  std::printf("guarantee spot-check: %d pruned images, none beats the "
              "shortlist best (as proved)\n",
              checked);
  return 0;
}
