// Quickstart: build a small dataset of multi-instance objects, run the NN
// candidates search under each spatial dominance operator, and show the
// trade-off between candidate-set size and NN-function coverage.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "core/nnc_search.h"
#include "datagen/generators.h"
#include "datagen/workload.h"

int main() {
  using namespace osd;

  // A synthetic dataset: 2,000 objects in 3-d, ~20 instances each
  // (anti-correlated centers, the paper's default distribution).
  SyntheticParams params;
  params.dim = 3;
  params.num_objects = 2'000;
  params.instances_per_object = 20;
  params.object_edge = 400.0;
  params.seed = 7;
  const Dataset dataset = GenerateSynthetic(params);

  // A query object with 10 instances near a random object's center.
  WorkloadParams wp;
  wp.num_queries = 1;
  wp.query_instances = 10;
  wp.query_edge = 200.0;
  const auto workload = GenerateWorkload(dataset, wp);
  const UncertainObject& query = workload[0].query;

  std::printf("dataset: %d objects, dim %d; query: %d instances\n\n",
              dataset.size(), dataset.dim(), query.num_instances());
  std::printf("%-6s %-28s %10s %10s %12s\n", "op", "covers", "candidates",
              "time(ms)", "dom-checks");

  const struct {
    Operator op;
    const char* covers;
  } rows[] = {
      {Operator::kSSd, "N1 (stable aggregates)"},
      {Operator::kSsSd, "N1+N2 (possible worlds)"},
      {Operator::kPSd, "N1+N2+N3 (selected pairs)"},
      {Operator::kFSd, "all, but not complete"},
      {Operator::kFPlusSd, "all, MBR-level only"},
  };
  for (const auto& row : rows) {
    NncOptions options;
    options.op = row.op;
    options.exclude_id = workload[0].seeded_from;
    const NncResult result = NncSearch(dataset, options).Run(query);
    std::printf("%-6s %-28s %10zu %10.2f %12ld\n", OperatorName(row.op),
                row.covers, result.candidates.size(), result.seconds * 1e3,
                result.stats.dominance_checks);
  }

  std::printf(
      "\nEvery candidate set above is guaranteed to contain the nearest\n"
      "neighbor for every NN function its operator covers (Theorems 5-7).\n");
  return 0;
}
