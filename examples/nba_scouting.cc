// NBA scouting: find candidate "most similar players" to a target profile.
//
// A player is a multi-valued object whose instances are per-game stat
// lines (points, assists, rebounds) -- the paper's NBA scenario. A scout
// does not commit to one similarity function (expected distance?
// quantile? Earth Mover's?), so instead of one NN we compute the NN
// *candidates*: the set guaranteed to contain the most similar player for
// every reasonable NN function, and let the scout browse.
//
//   ./build/examples/nba_scouting

#include <algorithm>
#include <cstdio>
#include <vector>

#include "common/rng.h"
#include "core/nnc_search.h"
#include "datagen/surrogates.h"
#include "nnfun/n1_functions.h"
#include "nnfun/n3_functions.h"

int main() {
  using namespace osd;

  const Dataset league = NbaLike(/*seed=*/2024);
  std::printf("league: %d players (3-d per-game stat lines)\n",
              league.size());

  // Target profile: a hypothetical prospect with 12 scouting reports
  // (instances) around a high-scoring, medium-rebounding profile.
  Rng rng(99);
  std::vector<double> coords;
  for (int g = 0; g < 12; ++g) {
    coords.push_back(5'500.0 + rng.Normal(0.0, 900.0));  // points axis
    coords.push_back(2'000.0 + rng.Normal(0.0, 700.0));  // assists axis
    coords.push_back(3'000.0 + rng.Normal(0.0, 800.0));  // rebounds axis
  }
  const UncertainObject prospect = UncertainObject::Uniform(-1, 3, coords);

  // P-SD covers every NN-function family in the paper (N1, N2, N3), so
  // its candidate set is the safe shortlist.
  NncOptions options;
  options.op = Operator::kPSd;
  const NncResult shortlist = NncSearch(league, options).Run(prospect);
  std::printf("P-SD shortlist: %zu of %d players (%.1f ms)\n\n",
              shortlist.candidates.size(), league.size(),
              shortlist.seconds * 1e3);

  // Rank the shortlist under three different similarity functions the
  // scout might care about; the true NN under each is guaranteed to be in
  // the shortlist.
  struct Scored {
    int id;
    double expected;
    double q90;
    double emd;
  };
  std::vector<Scored> scored;
  for (int id : shortlist.candidates) {
    const UncertainObject& player = league.object(id);
    scored.push_back({id, ExpectedDistance(player, prospect),
                      QuantileDistance(player, prospect, 0.9),
                      EmdDistance(player, prospect)});
  }
  auto print_top = [&](const char* name, auto key) {
    std::sort(scored.begin(), scored.end(),
              [&](const Scored& a, const Scored& b) { return key(a) < key(b); });
    std::printf("top-5 by %s:", name);
    for (int i = 0; i < 5 && i < static_cast<int>(scored.size()); ++i) {
      std::printf("  #%d(%.0f)", scored[i].id, key(scored[i]));
    }
    std::printf("\n");
  };
  print_top("expected distance   ", [](const Scored& s) { return s.expected; });
  print_top("0.9-quantile distance", [](const Scored& s) { return s.q90; });
  print_top("earth mover's dist.  ", [](const Scored& s) { return s.emd; });

  // Tighter shortlists when the scout restricts the function family.
  for (Operator op : {Operator::kSsSd, Operator::kSSd}) {
    NncOptions narrow;
    narrow.op = op;
    const NncResult r = NncSearch(league, narrow).Run(prospect);
    std::printf("\n%s shortlist (smaller coverage): %zu players",
                OperatorName(op), r.candidates.size());
  }
  std::printf("\n");
  return 0;
}
