// osd_chaos: adversarial soak of the service tier.
//
// Runs repeated epochs of a live in-process osd server under hostile load:
// verifying clients that check every answer against precomputed exact
// results, slow clients that burst requests and never read, clients that
// abort mid-stream, a mutator that streams insert/update/delete batches
// through the wire (with the background fold thread merging them), random
// failpoint storms across every compiled-in site, and SIGTERM/drain cycles
// raised mid-traffic. After every epoch the harness asserts the resilience
// invariants:
//
//   * server inflight count is zero and submitted == completed
//     (zero leaked tickets),
//   * the engine-wide memory budget has drained to zero charged bytes
//     (after a final fold retires the mutation delta),
//   * no snapshot pin outlives the drain (live_snapshots == 0),
//   * every osd_tenant_inflight gauge in the Prometheus export reads 0
//     (no leaked tenant slots, no double releases),
//   * zero verification mismatches: an OK result equals the exact answer;
//     a degraded result is a certified superset of it. The mutator only
//     touches fresh external ids (>= 1000) placed ~1e6 away from the seed
//     data, so the precomputed exact answers stay exact at every store
//     epoch — mutation visibility must never bleed into them,
//   * writes are governed: non-mutator tenants get write_denied; the
//     mutator's own well-formed batches are never refused as bad_mutation,
//   * the server drained cleanly (SIGTERM epochs exercise the
//     async-signal-safe RequestDrain path).
//
// Any violation fails the run (exit 1). The storm RNG and every persona
// RNG derive from --seed, so a failing run replays identically.
//
// Usage: osd_chaos [--seconds N] [--quick] [--seed S] [--threads T]
//   --quick   ~3 second smoke (for scripts/server_smoke.sh)
//   default   30 second soak; CI nightly runs --seconds 180 under ASan
//
// Crash persona (exclusive mode, replaces the soak):
//
//   osd_chaos --crash-cycles N --wal-dir DIR [--seed S]
//
// runs N SIGKILL/restart cycles against a forked child server with the
// durability tier on DIR. Each cycle the parent streams acked mutate
// batches (reply read, seq checked dense), then fires two more batches
// without reading the replies and SIGKILLs the child mid-write. After
// every kill the parent recovers DIR offline and asserts the durability
// contract: every acked batch survived verbatim (ids, instance rows,
// normalized probabilities), unacked batches either applied wholly or
// not at all (never half), and the recovered sequence is exactly a
// prefix-extension of the acked history. The final cycle drains via
// SIGTERM instead and must leave a cleanly sealed log. Any violation
// exits 1. The child folds aggressively (50 ms interval, tiny delta
// threshold) so kills land during checkpoint writes and WAL rotations
// too, not just appends.

#include <signal.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <random>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/failpoint.h"
#include "datagen/generators.h"
#include "engine/query_engine.h"
#include "io/durable_store.h"
#include "net/client.h"
#include "net/json.h"
#include "net/protocol.h"
#include "net/server.h"
#include "net/wire.h"

namespace {

using osd::Dataset;
using osd::EngineOptions;
using osd::Operator;
using osd::QueryEngine;
using osd::QuerySpec;
using osd::SyntheticParams;
using osd::net::BuildMutateMessage;
using osd::net::BuildSubmitMessage;
using osd::net::EncodeFrame;
using osd::net::MutateOp;
using osd::net::JsonValue;
using osd::net::MessageType;
using osd::net::OsdClient;
using osd::net::OsdServer;
using osd::net::SendAll;
using osd::net::ServerOptions;
using osd::net::SubmitParams;
using osd::net::TenantPolicy;

// --- SIGTERM plumbing -------------------------------------------------------

std::atomic<OsdServer*> g_server{nullptr};

extern "C" void OnSigterm(int) {
  OsdServer* server = g_server.load(std::memory_order_acquire);
  if (server != nullptr) server->RequestDrain();  // async-signal-safe
}

// --- verification table -----------------------------------------------------

struct Combo {
  const char* op_name;
  Operator op;
  int object;
  int k;
  std::vector<int> exact;  ///< sorted exact candidate set (no failpoints)
};

Dataset MakeDataset() {
  SyntheticParams p;
  p.dim = 2;
  p.num_objects = 300;
  p.instances_per_object = 5;
  p.seed = 42;
  return osd::GenerateSynthetic(p);
}

/// Computes the exact answer for every combo on a clean engine (failpoints
/// off, no deadlines). These are the ground truth the verifier personas
/// hold every live answer against.
std::vector<Combo> PrecomputeExact() {
  std::vector<Combo> combos;
  const struct {
    const char* name;
    Operator op;
  } ops[] = {{"psd", Operator::kPSd},
             {"fsd", Operator::kFSd},
             {"ssd", Operator::kSSd}};
  for (const auto& op : ops) {
    for (int object : {0, 5, 17, 33, 101}) {
      for (int k : {1, 3}) {
        combos.push_back(Combo{op.name, op.op, object, k, {}});
      }
    }
  }
  QueryEngine engine(MakeDataset(), EngineOptions{.num_threads = 2});
  for (Combo& combo : combos) {
    QuerySpec spec;
    spec.query = engine.dataset().object(combo.object);
    spec.options.op = combo.op;
    spec.options.k = combo.k;
    spec.options.exclude_id = combo.object;
    auto ticket = engine.Submit(std::move(spec));
    ticket->Wait();
    if (ticket->status() != osd::QueryStatus::kOk) {
      std::fprintf(stderr, "FAIL: exact precompute %s obj=%d k=%d -> %s\n",
                   combo.op_name, combo.object, combo.k,
                   osd::QueryStatusName(ticket->status()));
      std::exit(1);
    }
    combo.exact = ticket->result().candidates;
    std::sort(combo.exact.begin(), combo.exact.end());
  }
  return combos;
}

// --- shared epoch state -----------------------------------------------------

struct Tally {
  std::atomic<long> ok{0};
  std::atomic<long> degraded{0};
  std::atomic<long> other_terminal{0};  ///< deadline/cancel/error/stalled
  std::atomic<long> shed{0};            ///< over_inflight / rejected / draining
  std::atomic<long> read_failures{0};   ///< disconnects, timeouts, evictions
  std::atomic<long> mismatches{0};      ///< verification violations
  std::atomic<long> mutated{0};         ///< ops confirmed by mutate_ok
  std::atomic<long> write_denials{0};   ///< write_denied seen by non-writers
};

void SetRecvTimeout(int fd, int ms) {
  timeval tv{};
  tv.tv_sec = ms / 1000;
  tv.tv_usec = (ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
}

/// Reads frames until the terminal frame (result, or an error carrying our
/// id or none). Returns false on any transport failure.
bool ReadTerminal(OsdClient& client, long id, JsonValue* out) {
  std::string error;
  for (;;) {
    if (!client.Read(out, &error)) return false;
    const std::string type = MessageType(out == nullptr ? JsonValue() : *out);
    if (type == "result") {
      const JsonValue* mid = out->Find("id");
      if (mid != nullptr && static_cast<long>(mid->AsNumber()) == id) {
        return true;
      }
    } else if (type == "error") {
      const JsonValue* mid = out->Find("id");
      if (mid == nullptr || static_cast<long>(mid->AsNumber()) == id) {
        return true;
      }
    }
    // candidate / candidates_coalesced / metrics_ok / stale frames: skip.
  }
}

/// Persona 1: well-behaved clients that verify every answer.
void VerifierLoop(int port, const std::vector<Combo>& combos,
                  unsigned long long seed, const std::atomic<bool>& stop,
                  Tally* tally) {
  std::mt19937_64 rng(seed);
  while (!stop.load(std::memory_order_acquire)) {
    OsdClient client;
    std::string error;
    if (!client.Connect("127.0.0.1", port, "verify", &error)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      continue;
    }
    SetRecvTimeout(client.fd(), 5000);
    long next_id = 1;
    while (!stop.load(std::memory_order_acquire)) {
      const Combo& combo = combos[rng() % combos.size()];
      SubmitParams params;
      params.id = next_id++;
      params.object_id = combo.object;
      params.op = combo.op_name;
      params.k = combo.k;
      switch (rng() % 4) {
        case 0: break;  // no deadline: the watchdog's no-deadline clock
        case 1: params.deadline_ms = 30.0; break;
        default:
          params.deadline_ms = 2.0;
          params.accept_degraded = true;
          break;
      }
      if (!client.Send(BuildSubmitMessage(params), &error)) break;
      JsonValue msg;
      if (!ReadTerminal(client, params.id, &msg)) {
        tally->read_failures.fetch_add(1);
        break;
      }
      if (MessageType(msg) == "error") {
        tally->shed.fetch_add(1);
        continue;
      }
      const std::string status = msg.Find("status")->AsString();
      const bool degraded = msg.Find("degraded")->AsBool();
      std::vector<int> got;
      for (const JsonValue& v : msg.Find("candidates")->Items()) {
        got.push_back(static_cast<int>(v.AsNumber()));
      }
      std::sort(got.begin(), got.end());
      if (status == "OK") {
        tally->ok.fetch_add(1);
        if (got != combo.exact) {
          tally->mismatches.fetch_add(1);
          std::fprintf(stderr,
                       "VIOLATION: OK result differs from exact (%s obj=%d "
                       "k=%d: got %zu, want %zu)\n",
                       combo.op_name, combo.object, combo.k, got.size(),
                       combo.exact.size());
        }
      } else if (degraded) {
        // Certified superset contract: every exact answer is in the
        // degraded set, whatever terminated the query early.
        tally->degraded.fetch_add(1);
        if (!std::includes(got.begin(), got.end(), combo.exact.begin(),
                           combo.exact.end())) {
          tally->mismatches.fetch_add(1);
          std::fprintf(stderr,
                       "VIOLATION: degraded result is not a superset of the "
                       "exact answer (%s obj=%d k=%d, status=%s)\n",
                       combo.op_name, combo.object, combo.k, status.c_str());
        }
      } else {
        tally->other_terminal.fetch_add(1);
      }
    }
    client.Close();
  }
}

/// Persona 2: a slow consumer — bursts of unread requests that push the
/// connection through the watermark/coalescing/eviction machinery, then
/// either an abrupt close or a late drain.
void SlowReaderLoop(int port, unsigned long long seed,
                    const std::atomic<bool>& stop, Tally* tally) {
  std::mt19937_64 rng(seed);
  const std::string metrics = EncodeFrame(R"({"type":"metrics"})");
  while (!stop.load(std::memory_order_acquire)) {
    OsdClient client;
    std::string error;
    if (!client.Connect("127.0.0.1", port, "capped", &error)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      continue;
    }
    SetRecvTimeout(client.fd(), 2000);
    std::string burst;
    const int n = 50 + static_cast<int>(rng() % 200);
    burst.reserve(n * metrics.size() + 128);
    for (int i = 0; i < n; ++i) burst += metrics;
    SubmitParams params;
    params.id = 1;
    params.object_id = static_cast<int>(rng() % 300);
    params.k = 2;
    burst += EncodeFrame(BuildSubmitMessage(params));
    if (SendAll(client.fd(), burst.data(), burst.size(), &error)) {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(50 + rng() % 200));
      if (rng() % 2 == 0) {
        // Drain late: tolerate eviction, drain errors, disconnects.
        JsonValue msg;
        if (!ReadTerminal(client, params.id, &msg)) {
          tally->read_failures.fetch_add(1);
        }
      }
    }
    client.Close();  // otherwise: abrupt close with frames still queued
  }
}

/// Persona 3: aborts connections with queries still in flight, exercising
/// disconnect-cancels-tickets and tenant slot release.
void AborterLoop(int port, unsigned long long seed,
                 const std::atomic<bool>& stop, Tally* /*tally*/) {
  std::mt19937_64 rng(seed);
  while (!stop.load(std::memory_order_acquire)) {
    OsdClient client;
    std::string error;
    if (!client.Connect("127.0.0.1", port, "abort", &error)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      continue;
    }
    const int submits = 1 + static_cast<int>(rng() % 3);
    for (int i = 0; i < submits; ++i) {
      SubmitParams params;
      params.id = i + 1;
      params.object_id = static_cast<int>(rng() % 300);
      params.op = (rng() % 2 == 0) ? "psd" : "fsd";
      params.k = 1 + static_cast<int>(rng() % 3);
      if (!client.Send(BuildSubmitMessage(params), &error)) break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(rng() % 20));
    client.Close();
  }
}

/// Reads frames until a mutate_ok or error frame. Returns false on any
/// transport failure.
bool ReadMutateTerminal(OsdClient& client, JsonValue* out) {
  std::string error;
  for (;;) {
    if (!client.Read(out, &error)) return false;
    const std::string type = MessageType(*out);
    if (type == "mutate_ok" || type == "error") return true;
  }
}

/// The error "code" member of a frame ("" when absent).
std::string ErrorCode(const JsonValue& msg) {
  const JsonValue* code = msg.Find("code");
  return code != nullptr && code->is_string() ? code->AsString() : "";
}

/// Persona 5: a writer streaming insert/update/delete batches. It only
/// ever touches fresh external ids >= 1000 placed ~1e6 away from the seed
/// data, so every precomputed exact answer stays exact no matter which
/// epoch a verifier's query pins. Targets of updates/deletes come only
/// from ids confirmed live by a previous mutate_ok; after any transport
/// failure the confirmed set is discarded (the fate of the in-flight batch
/// is unknown) and the persona continues with fresh inserts. A well-formed
/// batch refused as bad_mutation is a violation; draining/shed errors are
/// tolerated.
void MutatorLoop(int port, unsigned long long seed,
                 const std::atomic<bool>& stop, Tally* tally) {
  std::mt19937_64 rng(seed);
  int next_id = 1000;
  auto far_rows = [&rng]() {
    std::vector<std::vector<double>> rows;
    const int n = 1 + static_cast<int>(rng() % 3);
    for (int i = 0; i < n; ++i) {
      const double x = 1e6 + static_cast<double>(rng() % 10'000) / 100.0;
      const double y = 1e6 + static_cast<double>(rng() % 10'000) / 100.0;
      rows.push_back({x, y, 1.0 + static_cast<double>(rng() % 3)});
    }
    return rows;
  };
  while (!stop.load(std::memory_order_acquire)) {
    OsdClient client;
    std::string error;
    if (!client.Connect("127.0.0.1", port, "mutator", &error)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      continue;
    }
    SetRecvTimeout(client.fd(), 5000);
    std::vector<int> live;  // ids confirmed live by mutate_ok
    long frame_id = 1;
    while (!stop.load(std::memory_order_acquire)) {
      std::vector<MutateOp> ops;
      std::vector<int> live_after = live;
      const int n = 1 + static_cast<int>(rng() % 4);
      for (int i = 0; i < n; ++i) {
        MutateOp op;
        const int choice = static_cast<int>(rng() % 3);
        if (choice == 0 || live_after.empty()) {
          op.action = "insert";
          op.object_id = next_id++;
          op.instances = far_rows();
          live_after.push_back(op.object_id);
        } else if (choice == 1) {
          op.action = "update";
          op.object_id = live_after[rng() % live_after.size()];
          op.instances = far_rows();
        } else {
          const size_t idx = rng() % live_after.size();
          op.action = "delete";
          op.object_id = live_after[idx];
          live_after.erase(live_after.begin() + idx);
        }
        ops.push_back(std::move(op));
      }
      if (!client.Send(BuildMutateMessage(frame_id++, ops), &error)) break;
      JsonValue msg;
      if (!ReadMutateTerminal(client, &msg)) {
        tally->read_failures.fetch_add(1);
        live.clear();  // the in-flight batch's fate is unknown
        break;
      }
      if (MessageType(msg) == "mutate_ok") {
        tally->mutated.fetch_add(static_cast<long>(ops.size()));
        live = std::move(live_after);
        continue;
      }
      const std::string code = ErrorCode(msg);
      const JsonValue* detail = msg.Find("message");
      const std::string text =
          detail != nullptr && detail->is_string() ? detail->AsString() : "";
      const bool budget_refusal = text.find("memory budget") !=
                                  std::string::npos;  // recoverable, not a bug
      if (code == "write_denied" ||
          (code == "bad_mutation" && !budget_refusal)) {
        // All ops were well-formed against the confirmed live set and the
        // mutator tenant is allowed to write: the store broke its contract.
        tally->mismatches.fetch_add(1);
        std::fprintf(stderr,
                     "VIOLATION: valid mutate batch refused (%s: %s)\n",
                     code.c_str(), text.c_str());
      }
      // draining / budget refusal: tolerated, keep going until stop.
    }
    client.Close();
  }
}

/// Persona 6: a would-be writer on a read-only tenant. Every mutate must
/// come back write_denied — anything else (an applied write, a different
/// refusal) is a governance violation.
void DeniedWriterLoop(int port, unsigned long long seed,
                      const std::atomic<bool>& stop, Tally* tally) {
  std::mt19937_64 rng(seed);
  while (!stop.load(std::memory_order_acquire)) {
    OsdClient client;
    std::string error;
    if (!client.Connect("127.0.0.1", port, "readonly", &error)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      continue;
    }
    SetRecvTimeout(client.fd(), 5000);
    MutateOp op;
    op.action = "insert";
    op.object_id = 5'000'000 + static_cast<int>(rng() % 1000);
    op.instances = {{2e6, 2e6, 1.0}};
    if (client.Send(BuildMutateMessage(1, {op}), &error)) {
      JsonValue msg;
      if (ReadMutateTerminal(client, &msg)) {
        const std::string code = ErrorCode(msg);
        if (MessageType(msg) == "mutate_ok") {
          tally->mismatches.fetch_add(1);
          std::fprintf(stderr,
                       "VIOLATION: read-only tenant's mutate was applied\n");
        } else if (code == "write_denied") {
          tally->write_denials.fetch_add(1);
        }
        // draining: tolerated.
      } else {
        tally->read_failures.fetch_add(1);
      }
    }
    client.Close();
    std::this_thread::sleep_for(std::chrono::milliseconds(20 + rng() % 60));
  }
}

/// Persona 4: random failpoint storms — every ~250 ms a fresh spec arms a
/// handful of random sites with probabilistic faults, then clears.
void StormLoop(unsigned long long seed, const std::atomic<bool>& stop) {
  if (!osd::failpoint::Enabled()) return;
  std::mt19937_64 rng(seed);
  osd::failpoint::SeedRng(seed);
  const std::vector<std::string> sites = osd::failpoint::KnownSiteNames();
  const char* actions[] = {"error", "throw", "delay(2)", "delay(5)"};
  while (!stop.load(std::memory_order_acquire)) {
    std::vector<size_t> picks(sites.size());
    for (size_t i = 0; i < picks.size(); ++i) picks[i] = i;
    std::shuffle(picks.begin(), picks.end(), rng);
    const size_t count = 3 + rng() % 4;
    std::string spec;
    for (size_t i = 0; i < count && i < picks.size(); ++i) {
      if (!spec.empty()) spec += ',';
      spec += sites[picks[i]];
      spec += '=';
      spec += actions[rng() % 4];
      spec += "@p=0.05";
    }
    std::string error;
    if (!osd::failpoint::Configure(spec, &error)) {
      std::fprintf(stderr, "FAIL: storm spec rejected: %s\n", error.c_str());
      std::exit(1);
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(250));
    osd::failpoint::Clear();
  }
  osd::failpoint::Clear();
}

// --- crash persona ----------------------------------------------------------

namespace crash {

using osd::UncertainObject;
using osd::io::DurableStore;

/// Child half of one kill cycle: recover DIR, serve with the durability
/// tier attached, report the bound port over `pipe_fd`, run until drained
/// (SIGTERM), then seal. Never returns to the fork call site.
[[noreturn]] void ChildServe(const std::string& wal_dir, int pipe_fd) {
  osd::failpoint::Clear();  // the child runs clean; kills are external
  DurableStore::RecoverResult rec;
  std::string error;
  if (!DurableStore::Recover(wal_dir, &rec, &error)) {
    std::fprintf(stderr, "crash child: recover refused: %s\n", error.c_str());
    ::_exit(3);
  }
  EngineOptions engine_options;
  engine_options.num_threads = 1;
  // Fold hot so kills land during checkpoint writes and WAL rotations.
  engine_options.fold_interval_s = 0.05;
  engine_options.fold_delta_threshold = 4;
  QueryEngine engine(Dataset(std::move(rec.objects)), engine_options);

  DurableStore store;
  if (!store.Open(wal_dir, rec.last_seq, &error)) {
    std::fprintf(stderr, "crash child: open: %s\n", error.c_str());
    ::_exit(3);
  }
  engine.versioned().AttachDurability(&store, rec.last_seq);
  store.Checkpoint(engine.versioned().Acquire(), rec.last_seq);

  ServerOptions server_options;  // default tenant may write
  server_options.durable = &store;
  OsdServer server(&engine, server_options);
  if (!server.Start(&error)) {
    std::fprintf(stderr, "crash child: start: %s\n", error.c_str());
    ::_exit(3);
  }
  g_server.store(&server, std::memory_order_release);
  ::signal(SIGTERM, OnSigterm);
  char line[32];
  const int n = std::snprintf(line, sizeof line, "PORT %d\n", server.port());
  if (::write(pipe_fd, line, static_cast<size_t>(n)) != n) ::_exit(3);
  ::close(pipe_fd);

  server.Wait();  // until the SIGTERM drain (or an external SIGKILL)
  g_server.store(nullptr, std::memory_order_release);
  engine.versioned().DetachDurability();
  if (!store.Seal(engine.versioned().last_seq(), &error)) {
    std::fprintf(stderr, "crash child: seal: %s\n", error.c_str());
    ::_exit(3);
  }
  ::_exit(0);
}

/// One weighted instance row set ~1e6 away from anything else.
std::vector<std::vector<double>> Rows(std::mt19937_64& rng) {
  std::vector<std::vector<double>> rows;
  const int n = 1 + static_cast<int>(rng() % 3);
  for (int i = 0; i < n; ++i) {
    rows.push_back({1e6 + static_cast<double>(rng() % 100'000) / 100.0,
                    1e6 + static_cast<double>(rng() % 100'000) / 100.0,
                    1.0 + static_cast<double>(rng() % 3)});
  }
  return rows;
}

/// Replays `batches[0..n)` into the expected id -> weighted-rows state.
/// Every batch applies atomically, mirroring the store contract.
std::map<int, std::vector<std::vector<double>>> BuildModel(
    const std::vector<std::vector<MutateOp>>& batches, size_t n) {
  std::map<int, std::vector<std::vector<double>>> model;
  for (size_t b = 0; b < n; ++b) {
    for (const MutateOp& op : batches[b]) {
      if (op.action == "delete") {
        model.erase(op.object_id);
      } else {
        model[op.object_id] = op.instances;
      }
    }
  }
  return model;
}

/// Asserts the recovered objects equal the model exactly: same ids, same
/// instance rows, probabilities matching the weight normalization.
bool StateMatches(const std::vector<UncertainObject>& objects,
                  const std::map<int, std::vector<std::vector<double>>>& model,
                  std::string* why) {
  if (objects.size() != model.size()) {
    *why = "object count " + std::to_string(objects.size()) + " != model " +
           std::to_string(model.size());
    return false;
  }
  for (const UncertainObject& o : objects) {
    const auto it = model.find(o.id());
    if (it == model.end()) {
      *why = "unexpected object id " + std::to_string(o.id());
      return false;
    }
    const auto& rows = it->second;
    if (static_cast<size_t>(o.num_instances()) != rows.size()) {
      *why = "object " + std::to_string(o.id()) + " has " +
             std::to_string(o.num_instances()) + " instances, want " +
             std::to_string(rows.size());
      return false;
    }
    double weight_sum = 0.0;
    for (const auto& row : rows) weight_sum += row.back();
    for (size_t i = 0; i < rows.size(); ++i) {
      const osd::Point p = o.Instance(static_cast<int>(i));
      for (int d = 0; d < o.dim(); ++d) {
        if (p[d] != rows[i][static_cast<size_t>(d)]) {
          *why = "object " + std::to_string(o.id()) + " coordinate drift";
          return false;
        }
      }
      const double want_prob = rows[i].back() / weight_sum;
      if (std::fabs(o.Prob(static_cast<int>(i)) - want_prob) > 1e-12) {
        *why = "object " + std::to_string(o.id()) + " probability drift";
        return false;
      }
    }
  }
  return true;
}

int Fail(const char* stage, int cycle, const std::string& detail) {
  std::fprintf(stderr, "FAIL: crash cycle %d, %s: %s\n", cycle, stage,
               detail.c_str());
  return 1;
}

int Run(int cycles, const std::string& wal_dir, unsigned long long seed) {
  std::mt19937_64 rng(seed * 2654435761ull + 1);
  std::vector<std::vector<MutateOp>> batches;  // index b <=> WAL seq b+1
  int next_id = 1000;
  long killed = 0, acked_total = 0;

  auto make_batch = [&](const std::map<int, std::vector<std::vector<double>>>&
                            live) {
    std::vector<MutateOp> ops;
    const int n = 1 + static_cast<int>(rng() % 3);
    // Track in-batch effects so updates/deletes stay well-formed even when
    // an earlier op of the same batch inserted or deleted their target.
    std::map<int, std::vector<std::vector<double>>> pending = live;
    for (int i = 0; i < n; ++i) {
      MutateOp op;
      const int choice = static_cast<int>(rng() % 5);
      if (choice < 3 || pending.empty()) {
        op.action = "insert";
        op.object_id = next_id++;
        op.instances = Rows(rng);
        pending[op.object_id] = op.instances;
      } else {
        auto it = pending.begin();
        std::advance(it, static_cast<long>(rng() % pending.size()));
        op.object_id = it->first;
        if (choice == 3) {
          op.action = "update";
          op.instances = Rows(rng);
          it->second = op.instances;
        } else {
          op.action = "delete";
          pending.erase(it);
        }
      }
      ops.push_back(std::move(op));
    }
    return ops;
  };

  for (int cycle = 0; cycle < cycles; ++cycle) {
    const bool final_cycle = cycle == cycles - 1;
    int fds[2];
    if (::pipe(fds) != 0) return Fail("pipe", cycle, "pipe() failed");
    const pid_t pid = ::fork();
    if (pid < 0) return Fail("fork", cycle, "fork() failed");
    if (pid == 0) {
      ::close(fds[0]);
      ChildServe(wal_dir, fds[1]);
    }
    ::close(fds[1]);

    // The child reports its bound port as "PORT n\n" (or dies: EOF).
    std::string port_line;
    char c;
    while (port_line.size() < 64 && ::read(fds[0], &c, 1) == 1 && c != '\n') {
      port_line.push_back(c);
    }
    ::close(fds[0]);
    int port = 0;
    if (std::sscanf(port_line.c_str(), "PORT %d", &port) != 1 || port <= 0) {
      ::kill(pid, SIGKILL);
      ::waitpid(pid, nullptr, 0);
      return Fail("startup", cycle, "child reported no port");
    }

    OsdClient client;
    std::string error;
    if (!client.Connect("127.0.0.1", port, "default", &error)) {
      ::kill(pid, SIGKILL);
      ::waitpid(pid, nullptr, 0);
      return Fail("connect", cycle, error);
    }
    SetRecvTimeout(client.fd(), 10'000);

    // Acked phase: every reply read, seq must continue the dense history.
    std::map<int, std::vector<std::vector<double>>> live =
        BuildModel(batches, batches.size());
    const int acked_writes = 3 + static_cast<int>(rng() % 8);
    for (int i = 0; i < acked_writes; ++i) {
      std::vector<MutateOp> ops = make_batch(live);
      if (!client.Send(BuildMutateMessage(i + 1, ops), &error)) {
        ::kill(pid, SIGKILL);
        ::waitpid(pid, nullptr, 0);
        return Fail("send", cycle, error);
      }
      JsonValue msg;
      if (!ReadMutateTerminal(client, &msg) ||
          MessageType(msg) != "mutate_ok") {
        ::kill(pid, SIGKILL);
        ::waitpid(pid, nullptr, 0);
        return Fail("ack", cycle, "mutate was not acknowledged");
      }
      const JsonValue* seq = msg.Find("seq");
      const uint64_t want_seq = static_cast<uint64_t>(batches.size()) + 1;
      if (seq == nullptr ||
          static_cast<uint64_t>(seq->AsNumber()) != want_seq) {
        ::kill(pid, SIGKILL);
        ::waitpid(pid, nullptr, 0);
        return Fail("ack", cycle,
                    "mutate_ok seq != expected " + std::to_string(want_seq));
      }
      batches.push_back(ops);
      ++acked_total;
      for (const MutateOp& op : ops) {
        if (op.action == "delete") live.erase(op.object_id);
        else live[op.object_id] = op.instances;
      }
    }
    const uint64_t acked_seq = static_cast<uint64_t>(batches.size());

    int status = 0;
    if (final_cycle) {
      // Clean drain: everything sent was acked, the log must seal.
      client.Close();
      ::kill(pid, SIGTERM);
      ::waitpid(pid, &status, 0);
      if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
        return Fail("drain", cycle, "child did not exit cleanly on SIGTERM");
      }
    } else {
      // Kill phase: two batches fired without reading the replies, then
      // SIGKILL lands mid-write. Their fate is unknown — but must be
      // all-or-nothing, in order.
      for (int i = 0; i < 2; ++i) {
        std::vector<MutateOp> ops = make_batch(live);
        if (!client.Send(BuildMutateMessage(100 + i, ops), &error)) break;
        batches.push_back(ops);
        for (const MutateOp& op : ops) {
          if (op.action == "delete") live.erase(op.object_id);
          else live[op.object_id] = op.instances;
        }
      }
      ::kill(pid, SIGKILL);
      client.Close();
      ::waitpid(pid, &status, 0);
      if (!WIFSIGNALED(status) || WTERMSIG(status) != SIGKILL) {
        return Fail("kill", cycle, "child did not die from SIGKILL");
      }
      ++killed;
    }

    // Offline verification against the acked model.
    DurableStore::RecoverResult rec;
    if (!DurableStore::Recover(wal_dir, &rec, &error)) {
      return Fail("recover", cycle, error);
    }
    for (const std::string& w : rec.warnings) {
      std::fprintf(stderr, "crash cycle %d: recovery warning: %s\n", cycle,
                   w.c_str());
    }
    if (rec.last_seq < acked_seq) {
      return Fail("durability", cycle,
                  "acked seq " + std::to_string(acked_seq) +
                      " lost: recovered only to " +
                      std::to_string(rec.last_seq));
    }
    if (rec.last_seq > batches.size()) {
      return Fail("durability", cycle,
                  "recovered seq " + std::to_string(rec.last_seq) +
                      " beyond anything sent (" +
                      std::to_string(batches.size()) + ")");
    }
    if (final_cycle && !rec.sealed) {
      return Fail("seal", cycle, "drained child left an unsealed log");
    }
    std::string why;
    if (!StateMatches(rec.objects,
                      BuildModel(batches, static_cast<size_t>(rec.last_seq)),
                      &why)) {
      return Fail("state", cycle, why);
    }
    // Unapplied suffix batches were never durable; forget them so the next
    // cycle's seqs line up with the store's dense history.
    batches.resize(static_cast<size_t>(rec.last_seq));
    std::printf("crash cycle %d%s: recovered seq %llu (acked %llu), "
                "%zu object(s), %llu replayed batch(es)%s\n",
                cycle, final_cycle ? " (sigterm)" : " (sigkill)",
                static_cast<unsigned long long>(rec.last_seq),
                static_cast<unsigned long long>(acked_seq),
                rec.objects.size(),
                static_cast<unsigned long long>(rec.replayed_batches),
                rec.sealed ? ", sealed" : "");
    std::fflush(stdout);
  }

  std::printf("PASS: crash soak — %d cycles (%ld SIGKILL), %ld acked "
              "batch(es), zero acked-write loss\n",
              cycles, killed, acked_total);
  return 0;
}

}  // namespace crash

// --- epoch ------------------------------------------------------------------

struct EpochReport {
  int violations = 0;
};

/// Asserts one invariant; prints and counts the violation when false.
void Check(bool ok, const char* what, EpochReport* report) {
  if (ok) return;
  ++report->violations;
  std::fprintf(stderr, "VIOLATION: %s\n", what);
}

EpochReport RunEpoch(int epoch, const std::vector<Combo>& combos,
                     unsigned long long seed, double epoch_seconds,
                     int threads, bool sigterm_cycle, Tally* tally) {
  EngineOptions engine_options;
  engine_options.num_threads = threads;
  engine_options.shed_on_overload = true;
  engine_options.per_query_mem_bytes = 8 << 20;
  engine_options.engine_mem_bytes = 64 << 20;
  engine_options.watchdog = true;
  engine_options.watchdog_no_deadline_ms = 2000.0;
  // Background fold: both triggers armed so epochs exercise threshold
  // folds under write bursts and interval folds during lulls.
  engine_options.fold_interval_s = 0.2;
  engine_options.fold_delta_threshold = 64;
  // Cross-query work sharing under fire: the cache races the mutator's
  // epoch bumps (stale-serve invariant below) and batches race the
  // aborter/sigterm drains. Capacity stays well under the engine budget so
  // resident entries cannot starve query admission.
  engine_options.profile_cache_bytes = 16 << 20;
  engine_options.max_batch = 4;
  engine_options.batch_window_us = 200.0;
  QueryEngine engine(MakeDataset(), engine_options);

  ServerOptions server_options;
  // Low enough that the slow reader's biggest bursts cross it (eviction
  // path exercised), high enough that cooperative clients never do.
  server_options.max_output_buffer_bytes = 512u << 10;
  server_options.output_high_watermark_bytes = 32u << 10;
  server_options.idle_timeout_s = 5.0;
  server_options.write_stall_timeout_s = 2.0;
  TenantPolicy capped;
  capped.max_inflight = 2;
  server_options.tenants["capped"] = capped;
  // Writes are opt-in: only the mutator tenant may send mutate frames, and
  // its batches are capped. Everyone else (readonly persona included) must
  // see write_denied.
  server_options.default_policy.allow_writes = false;
  TenantPolicy mutator;
  mutator.max_mutation_ops = 8;
  server_options.tenants["mutator"] = mutator;
  OsdServer server(&engine, server_options);
  std::string error;
  if (!server.Start(&error)) {
    std::fprintf(stderr, "FAIL: server start: %s\n", error.c_str());
    std::exit(1);
  }
  g_server.store(&server, std::memory_order_release);

  std::atomic<bool> stop{false};
  std::vector<std::thread> personas;
  personas.emplace_back(VerifierLoop, server.port(), std::cref(combos),
                        seed * 31 + 1, std::cref(stop), tally);
  personas.emplace_back(VerifierLoop, server.port(), std::cref(combos),
                        seed * 31 + 2, std::cref(stop), tally);
  personas.emplace_back(SlowReaderLoop, server.port(), seed * 31 + 3,
                        std::cref(stop), tally);
  personas.emplace_back(AborterLoop, server.port(), seed * 31 + 4,
                        std::cref(stop), tally);
  personas.emplace_back(StormLoop, seed * 31 + 5, std::cref(stop));
  personas.emplace_back(MutatorLoop, server.port(), seed * 31 + 6,
                        std::cref(stop), tally);
  personas.emplace_back(DeniedWriterLoop, server.port(), seed * 31 + 7,
                        std::cref(stop), tally);

  std::this_thread::sleep_for(std::chrono::duration<double>(epoch_seconds));

  if (sigterm_cycle) {
    // Drain raised from a real signal handler, mid-traffic: personas keep
    // hammering a draining server until they see it refuse them.
    ::raise(SIGTERM);
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  stop.store(true, std::memory_order_release);
  for (std::thread& t : personas) t.join();
  osd::failpoint::Clear();
  server.Shutdown();  // no-op wait if the SIGTERM drain already ran

  EpochReport report;
  Check(server.inflight() == 0, "server inflight != 0 after drain", &report);
  Check(server.queries_submitted() == server.queries_completed(),
        "submitted != completed after drain (leaked tickets)", &report);
  // Every query released its snapshot pin (Drain waits them out) and a
  // final fold retires whatever delta the mutator left, so the budget's
  // delta charges must drain to exactly zero.
  Check(engine.versioned().live_snapshots() == 0,
        "snapshot pins outlived the drain", &report);
  // Quiesce the sharing layers too: Drain flushes any open batch and
  // releases every resident profile-cache entry's budget charge, so the
  // zero-bytes invariant below covers the cache as well.
  engine.Drain();
  engine.versioned().Fold();
  Check(engine.memory_budget().current_bytes() == 0,
        "engine memory budget did not drain to zero", &report);
  const osd::EngineStats stats = engine.Snapshot();
  Check(stats.submitted == stats.completed,
        "engine submitted != completed (leaked engine tickets)", &report);
  Check(tally->mismatches.load() == 0, "verification mismatches", &report);
  // Epoch safety of the shared cache under concurrent mutation: the final
  // lookup guard must never have caught a stale-epoch entry about to be
  // served — shard-level invalidation alone has to be airtight.
  Check(stats.profile_cache_stale_serves_averted == 0,
        "stale-epoch profile cache entry reached the serve guard", &report);
  Check(stats.profile_cache_bytes == 0,
        "profile cache bytes nonzero after drain", &report);

  // Every per-tenant inflight gauge must read exactly 0: a leak shows 1+,
  // a double release shows a negative value.
  const std::string metrics = server.MetricsText();
  size_t pos = 0;
  while ((pos = metrics.find("osd_tenant_inflight{", pos)) !=
         std::string::npos) {
    size_t eol = metrics.find('\n', pos);
    if (eol == std::string::npos) eol = metrics.size();
    const std::string line = metrics.substr(pos, eol - pos);
    const size_t space = line.rfind(' ');
    const std::string value = line.substr(space + 1);
    if (value != "0") {
      ++report.violations;
      std::fprintf(stderr, "VIOLATION: leaked tenant slot: %s\n",
                   line.c_str());
    }
    pos = eol;
  }

  g_server.store(nullptr, std::memory_order_release);
  const osd::VersionedDataset::Stats vstats = engine.versioned().GetStats();
  std::printf(
      "epoch %d%s: submitted=%ld completed=%ld evictions=%ld coalesced=%ld "
      "stalled=%ld poisoned=%ld retries=%ld store_epoch=%llu folds=%llu "
      "mutations=%llu %s\n",
      epoch, sigterm_cycle ? " (sigterm)" : "", server.queries_submitted(),
      server.queries_completed(), server.evictions(),
      server.candidates_coalesced(), stats.stalled, stats.workers_poisoned,
      stats.retries, static_cast<unsigned long long>(vstats.epoch),
      static_cast<unsigned long long>(vstats.folds),
      static_cast<unsigned long long>(vstats.mutations),
      report.violations == 0 ? "invariants OK" : "VIOLATED");
  std::fflush(stdout);
  return report;
}

}  // namespace

int main(int argc, char** argv) {
  double total_seconds = 30.0;
  unsigned long long seed = 1;
  int threads = 3;
  int crash_cycles = 0;
  std::string wal_dir;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--seconds") {
      total_seconds = std::atof(next());
    } else if (arg == "--quick") {
      total_seconds = 3.0;
    } else if (arg == "--seed") {
      seed = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--threads") {
      threads = std::atoi(next());
    } else if (arg == "--crash-cycles") {
      crash_cycles = std::atoi(next());
    } else if (arg == "--wal-dir") {
      wal_dir = next();
    } else {
      std::fprintf(stderr,
                   "usage: osd_chaos [--seconds N] [--quick] [--seed S] "
                   "[--threads T] | --crash-cycles N --wal-dir DIR\n");
      return 2;
    }
  }

  if (crash_cycles > 0 || !wal_dir.empty()) {
    if (crash_cycles <= 0 || wal_dir.empty()) {
      std::fprintf(stderr,
                   "--crash-cycles and --wal-dir must be given together\n");
      return 2;
    }
    return crash::Run(crash_cycles, wal_dir, seed);
  }

  if (!osd::failpoint::Enabled()) {
    std::printf("note: failpoints not compiled in; storms disabled "
                "(build with -DOSD_FAILPOINTS=ON for full chaos)\n");
  }
  ::signal(SIGTERM, OnSigterm);

  std::printf("precomputing exact answers...\n");
  const std::vector<Combo> combos = PrecomputeExact();

  Tally tally;
  int violations = 0;
  int epoch = 0;
  const auto start = std::chrono::steady_clock::now();
  const double epoch_seconds = std::min(1.5, total_seconds / 2.0);
  while (std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
             .count() < total_seconds) {
    violations += RunEpoch(epoch, combos, seed + epoch, epoch_seconds,
                           threads, epoch % 2 == 1, &tally)
                      .violations;
    ++epoch;
  }

  std::printf(
      "soak done: %d epochs, verified ok=%ld degraded=%ld other=%ld "
      "shed=%ld read_failures=%ld mismatches=%ld mutated=%ld "
      "write_denials=%ld\n",
      epoch, tally.ok.load(), tally.degraded.load(),
      tally.other_terminal.load(), tally.shed.load(),
      tally.read_failures.load(), tally.mismatches.load(),
      tally.mutated.load(), tally.write_denials.load());
  if (tally.ok.load() == 0) {
    std::fprintf(stderr, "FAIL: no query was ever verified OK\n");
    return 1;
  }
  if (tally.mutated.load() == 0) {
    std::fprintf(stderr, "FAIL: no mutation was ever applied\n");
    return 1;
  }
  if (tally.write_denials.load() == 0) {
    std::fprintf(stderr, "FAIL: write governance was never exercised\n");
    return 1;
  }
  if (violations > 0) {
    std::fprintf(stderr, "FAIL: %d invariant violations\n", violations);
    return 1;
  }
  std::printf("PASS: chaos soak\n");
  return 0;
}
