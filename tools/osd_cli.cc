// Command-line NN-candidate search over user-provided datasets.
//
// Usage:
//   osd_cli --input data.txt [--weighted] [--binary]
//           (--query-id N | --query-file q.txt)
//           [--op ssd|sssd|psd|fsd|f+sd] [--k K] [--metric l2|l1]
//           [--filters all|bf|l|lp|lg|lgp] [--progressive] [--rank-by f]
//           [--deadline S] [--accept-degraded] [--mem-budget B]
//           [--failpoints SPEC] [--trace]
//
//   osd_cli query --port P [--host H] [--tenant NAME]
//           (--query-id N | --query-file q.txt)
//           [--op ...] [--k ...] [--metric ...] [--filters ...]
//           [--deadline-ms D] [--accept-degraded] [--retries N]
//           [--mem-budget B] [--no-stream] [--trace]
//           [--cancel-after-ms X]
//     A --query-file holding N > 1 objects runs in batch mode: all N are
//     submitted over the one connection (ids 1..N) before any frame is
//     read, so a batching server (see osd_server --max-batch) can share
//     one traversal across them. Frames interleave across ids; exit 0
//     iff every query ends OK / OK_DEGRADED.
//
//   osd_cli mutate --port P [--host H] [--tenant NAME]
//           [--insert ID:ROWS] [--update ID:ROWS] [--delete ID] ...
//     ROWS is a semicolon-separated instance list, each instance being
//     "x_1,...,x_d,w" (d coordinates plus a positive weight), e.g.
//     --insert "1000:0.1,0.2,1;0.3,0.4,2". Ops repeat and apply in order
//     as ONE all-or-nothing batch; the reply is mutate_ok with the new
//     epoch, or a write_denied / bad_mutation error frame.
//
//   osd_cli wal-dump PATH
//     Offline WAL inspection: PATH is a WAL segment file or a --wal-dir
//     directory (all segments, ascending). Prints one JSON line per
//     record ({"type":"record",...} with seq/kind/ops) and a
//     {"type":"segment",...} summary per file carrying the scan verdict
//     (ok / torn_tail / corrupt), seal state and valid byte count. Exit
//     0 iff every segment scanned clean.
//
//   osd_cli checkpoint-info PATH
//     PATH is a checkpoint file or a --wal-dir directory. Prints one
//     {"type":"checkpoint",...} JSON line per file: covered WAL seq and
//     object count, or valid:false with the load error (checksum
//     mismatch, truncation). Exit 0 iff every checkpoint loads.
//
//   osd_cli serve-batch --input data.txt [--weighted] [--binary]
//           (--workload queries.txt | --gen-queries N [--seed S])
//           [--threads T] [--op ...] [--k ...] [--metric ...] [--filters ...]
//           [--deadline-ms D | --deadline S] [--accept-degraded]
//           [--mem-budget B] [--engine-mem-budget B]
//           [--retries N] [--shed] [--failpoints SPEC]
//           [--trace] [--metrics-out FILE] [--slow-query-ms X]
//
// Robustness controls:
//   --deadline S        per-query budget in seconds (--deadline-ms in ms)
//   --accept-degraded   anytime mode: a query stopped by its deadline or
//                       memory budget returns the confirmed candidates plus
//                       the unexpanded frontier — a certified superset of
//                       the exact answer (status OK_DEGRADED) — instead of
//                       a partial set
//   --mem-budget B      per-query memory budget in bytes (k/m/g suffixes
//                       accepted, e.g. 64m). A query whose tracked
//                       allocations pass the cap degrades (with
//                       --accept-degraded) or fails with a retry-eligible
//                       MemoryExceeded error — never the process.
//   --engine-mem-budget B
//                       serve-batch: engine-wide cap across all in-flight
//                       queries; Submit applies admission control above
//                       90% of it (reject under --shed, block otherwise)
//   --retries N         serve-batch: retry each query up to N extra times
//                       on transient failures (jittered backoff)
//   --shed              serve-batch: reject (REJECTED) instead of blocking
//                       when the submission queue saturates
//   --failpoints SPEC   arm fault-injection sites (see common/failpoint.h);
//                       requires a -DOSD_FAILPOINTS=ON build to fire. The
//                       $OSD_FAILPOINTS env var is honoured too.
//
// Observability controls (see src/obs/):
//   --trace             single query: print the per-query trace (nested
//                       timed spans + filter-stage aggregates) as JSON;
//                       serve-batch: collect a trace per query so slow-log
//                       entries carry them. Needs a -DOSD_TRACING=ON build
//                       (the default) for span timings to be non-empty.
//   --metrics-out FILE  serve-batch: write the engine metrics in Prometheus
//                       text exposition format to FILE after the run
//   --slow-query-ms X   serve-batch: keep the slowest queries at or above
//                       X ms end-to-end and print them as JSON after the
//                       engine stats
//
// The input follows the text format of io/dataset_io.h (or the binary
// cache format with --binary). The query is either an object of the
// dataset (excluded from the search) or the single object of a separate
// file. --rank-by additionally orders the candidates by an NN function
// (mean, max, quantile=PHI, emd, hausdorff).
//
// query is a one-shot network client for a running osd_server (see
// tools/osd_server.cc and src/net/): it connects, submits one query over
// the wire protocol and prints every received frame — progressive
// "candidate" events, then the terminal "result" — as one JSON object per
// line. --cancel-after-ms sends a cancel that long after submitting (the
// degraded/cancel paths of the smoke harness). The exit code is 0 for
// OK / OK_DEGRADED, 1 for any other terminal status, 2 for usage or
// connection errors.
//
// serve-batch runs a whole query workload concurrently through the
// QueryEngine (src/engine/): every object of --workload (same text format
// as the dataset) — or N generated queries seeded from dataset objects —
// is submitted to a fixed-size thread pool, optionally with a per-query
// deadline, and the engine-level stats (throughput, latency percentiles,
// summed work counters) are printed as JSON.

#include <sys/stat.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include <thread>

#include "common/failpoint.h"
#include "common/memory_budget.h"
#include "core/nnc_search.h"
#include "datagen/workload.h"
#include "engine/query_engine.h"
#include "io/dataset_io.h"
#include "io/durable_store.h"
#include "io/wal.h"
#include "net/client.h"
#include "net/json.h"
#include "net/protocol.h"
#include "nnfun/n1_functions.h"
#include "nnfun/n3_functions.h"
#include "obs/trace.h"

namespace {

using namespace osd;

struct Args {
  bool serve_batch = false;
  std::string input;
  std::string query_file;
  int query_id = -1;
  bool weighted = false;
  bool binary = false;
  Operator op = Operator::kPSd;
  int k = 1;
  Metric metric = Metric::kL2;
  FilterConfig filters = FilterConfig::All();
  bool progressive = false;
  std::string rank_by;
  double deadline_s = 0.0;
  bool accept_degraded = false;
  long mem_budget_bytes = 0;         // per-query; 0 = unlimited
  long engine_mem_budget_bytes = 0;  // serve-batch engine-wide; 0 = unlimited
  std::string failpoints;
  bool trace = false;
  // serve-batch only:
  std::string metrics_out;
  double slow_query_ms = 0.0;
  std::string workload_file;
  int gen_queries = 0;
  uint64_t seed = 42;
  int threads = 0;  // 0 = hardware concurrency
  int retries = 0;
  bool shed = false;
};

[[noreturn]] void Die(const std::string& message) {
  std::fprintf(stderr, "osd_cli: %s\n", message.c_str());
  std::exit(2);
}

/// Parses "64m"-style byte sizes (plain bytes, or a k/m/g binary suffix,
/// case-insensitive). Returns a strictly positive count or dies.
long ParseByteSize(const std::string& s, const char* flag) {
  char* end = nullptr;
  const double value = std::strtod(s.c_str(), &end);
  long multiplier = 1;
  if (end != nullptr && *end != '\0') {
    switch (*end) {
      case 'k': case 'K': multiplier = 1L << 10; break;
      case 'm': case 'M': multiplier = 1L << 20; break;
      case 'g': case 'G': multiplier = 1L << 30; break;
      default: Die(std::string(flag) + ": bad byte size '" + s + "'");
    }
    if (*(end + 1) != '\0') {
      Die(std::string(flag) + ": bad byte size '" + s + "'");
    }
  }
  const double bytes = value * static_cast<double>(multiplier);
  if (!(bytes >= 1) || bytes > 9e18) {
    Die(std::string(flag) + " must be a positive byte count");
  }
  return static_cast<long>(bytes);
}

bool ParseOperator(const std::string& s, Operator* op) {
  if (s == "ssd") *op = Operator::kSSd;
  else if (s == "sssd") *op = Operator::kSsSd;
  else if (s == "psd") *op = Operator::kPSd;
  else if (s == "fsd") *op = Operator::kFSd;
  else if (s == "f+sd") *op = Operator::kFPlusSd;
  else return false;
  return true;
}

bool ParseFilters(const std::string& s, FilterConfig* config) {
  if (s == "all") *config = FilterConfig::All();
  else if (s == "bf") *config = FilterConfig::BruteForce();
  else if (s == "l") *config = FilterConfig::L();
  else if (s == "lp") *config = FilterConfig::LP();
  else if (s == "lg") *config = FilterConfig::LG();
  else if (s == "lgp") *config = FilterConfig::LGP();
  else return false;
  return true;
}

Args Parse(int argc, char** argv) {
  Args args;
  auto need_value = [&](int& i) -> std::string {
    if (i + 1 >= argc) Die(std::string("missing value for ") + argv[i]);
    return argv[++i];
  };
  int first = 1;
  if (argc > 1 && std::strcmp(argv[1], "serve-batch") == 0) {
    args.serve_batch = true;
    first = 2;
  }
  for (int i = first; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--input") {
      args.input = need_value(i);
    } else if (flag == "--query-file") {
      args.query_file = need_value(i);
    } else if (flag == "--query-id") {
      args.query_id = std::atoi(need_value(i).c_str());
    } else if (flag == "--weighted") {
      args.weighted = true;
    } else if (flag == "--binary") {
      args.binary = true;
    } else if (flag == "--op") {
      if (!ParseOperator(need_value(i), &args.op)) Die("unknown --op");
    } else if (flag == "--k") {
      args.k = std::atoi(need_value(i).c_str());
      if (args.k < 1) Die("--k must be >= 1");
    } else if (flag == "--metric") {
      const std::string m = need_value(i);
      if (m == "l2") args.metric = Metric::kL2;
      else if (m == "l1") args.metric = Metric::kL1;
      else Die("unknown --metric");
    } else if (flag == "--filters") {
      if (!ParseFilters(need_value(i), &args.filters)) Die("unknown --filters");
    } else if (flag == "--progressive") {
      args.progressive = true;
    } else if (flag == "--rank-by") {
      args.rank_by = need_value(i);
    } else if (flag == "--deadline") {
      args.deadline_s = std::atof(need_value(i).c_str());
      if (args.deadline_s <= 0) Die("--deadline must be > 0 seconds");
    } else if (flag == "--accept-degraded") {
      args.accept_degraded = true;
    } else if (flag == "--mem-budget") {
      args.mem_budget_bytes = ParseByteSize(need_value(i), "--mem-budget");
    } else if (args.serve_batch && flag == "--engine-mem-budget") {
      args.engine_mem_budget_bytes =
          ParseByteSize(need_value(i), "--engine-mem-budget");
    } else if (flag == "--failpoints") {
      args.failpoints = need_value(i);
    } else if (flag == "--trace") {
      args.trace = true;
    } else if (args.serve_batch && flag == "--metrics-out") {
      args.metrics_out = need_value(i);
    } else if (args.serve_batch && flag == "--slow-query-ms") {
      args.slow_query_ms = std::atof(need_value(i).c_str());
      if (args.slow_query_ms <= 0) Die("--slow-query-ms must be > 0");
    } else if (args.serve_batch && flag == "--workload") {
      args.workload_file = need_value(i);
    } else if (args.serve_batch && flag == "--gen-queries") {
      args.gen_queries = std::atoi(need_value(i).c_str());
      if (args.gen_queries < 1) Die("--gen-queries must be >= 1");
    } else if (args.serve_batch && flag == "--seed") {
      args.seed = std::strtoull(need_value(i).c_str(), nullptr, 10);
    } else if (args.serve_batch && flag == "--threads") {
      args.threads = std::atoi(need_value(i).c_str());
    } else if (args.serve_batch && flag == "--deadline-ms") {
      args.deadline_s = std::atof(need_value(i).c_str()) / 1e3;
    } else if (args.serve_batch && flag == "--retries") {
      args.retries = std::atoi(need_value(i).c_str());
      if (args.retries < 0) Die("--retries must be >= 0");
    } else if (args.serve_batch && flag == "--shed") {
      args.shed = true;
    } else {
      Die("unknown flag " + flag);
    }
  }
  if (args.input.empty()) Die("--input is required");
  if (args.serve_batch) {
    if (args.workload_file.empty() == (args.gen_queries == 0)) {
      Die("serve-batch needs exactly one of --workload / --gen-queries");
    }
  } else if (args.query_file.empty() && args.query_id < 0) {
    Die("one of --query-id / --query-file is required");
  }
  return args;
}

/// serve-batch: run a workload through the concurrent engine, print stats.
int ServeBatch(const Args& args, std::vector<UncertainObject> objects) {
  Dataset dataset(std::move(objects));

  std::vector<QuerySpec> specs;
  NncOptions base;
  base.op = args.op;
  base.k = args.k;
  base.metric = args.metric;
  base.filters = args.filters;
  base.degraded_superset = args.accept_degraded;
  RetryPolicy retry;
  retry.max_attempts = 1 + args.retries;

  if (!args.workload_file.empty()) {
    std::vector<UncertainObject> queries;
    std::string error;
    if (!LoadText(args.workload_file, &queries, &error)) Die(error);
    if (queries.empty()) Die("--workload holds no query objects");
    specs.reserve(queries.size());
    for (UncertainObject& q : queries) {
      QuerySpec spec;
      spec.query = std::move(q);
      spec.options = base;
      spec.deadline_seconds = args.deadline_s;
      spec.retry = retry;
      spec.collect_trace = args.trace;
      specs.push_back(std::move(spec));
    }
  } else {
    WorkloadParams wp;
    wp.num_queries = args.gen_queries;
    wp.seed = args.seed;
    for (auto& entry : GenerateWorkload(dataset, wp)) {
      NncOptions per_query = base;
      per_query.exclude_id = entry.seeded_from;
      QuerySpec spec;
      spec.query = std::move(entry.query);
      spec.options = per_query;
      spec.deadline_seconds = args.deadline_s;
      spec.retry = retry;
      spec.collect_trace = args.trace;
      specs.push_back(std::move(spec));
    }
  }

  const size_t num_queries = specs.size();
  QueryEngine engine(std::move(dataset),
                     {.num_threads = args.threads,
                      .shed_on_overload = args.shed,
                      .slow_query_threshold_ms = args.slow_query_ms,
                      .per_query_mem_bytes = args.mem_budget_bytes,
                      .engine_mem_bytes = args.engine_mem_budget_bytes});
  std::fprintf(stderr, "serve-batch: %zu queries on %d threads, operator %s\n",
               num_queries, engine.num_threads(), OperatorName(args.op));

  auto tickets = engine.SubmitBatch(std::move(specs));
  engine.Drain();

  // Shed queries are an expected outcome under --shed, so only true errors
  // fail the exit code; both kinds are reported for diagnosability.
  long failed = 0;
  for (size_t i = 0; i < tickets.size(); ++i) {
    const QueryStatus status = tickets[i]->status();
    if (status == QueryStatus::kError) {
      ++failed;
      std::fprintf(stderr, "query %zu: %s after %d attempt(s): %s\n", i,
                   QueryStatusName(status), tickets[i]->attempts(),
                   tickets[i]->error().c_str());
    } else if (status == QueryStatus::kRejected && !args.shed) {
      ++failed;
      std::fprintf(stderr, "query %zu: %s: %s\n", i, QueryStatusName(status),
                   tickets[i]->error().c_str());
    }
  }
  std::printf("%s\n", engine.Snapshot().ToJson().c_str());
  if (!args.metrics_out.empty()) {
    const std::string text = engine.MetricsText();
    std::FILE* f = std::fopen(args.metrics_out.c_str(), "w");
    if (f == nullptr) Die("cannot open --metrics-out " + args.metrics_out);
    std::fwrite(text.data(), 1, text.size(), f);
    std::fclose(f);
    std::fprintf(stderr, "metrics written to %s\n", args.metrics_out.c_str());
  }
  if (args.slow_query_ms > 0) {
    std::printf("%s\n", engine.SlowQueryDump().c_str());
  }
  return failed == 0 ? 0 : 1;
}

// --- `query` network-client subcommand -----------------------------------

struct QueryClientArgs {
  std::string host = "127.0.0.1";
  int port = 0;
  std::string tenant = "default";
  std::string query_file;
  int query_id = -1;
  std::string op = "psd";
  int k = 1;
  std::string metric = "l2";
  std::string filters = "all";
  double deadline_ms = 0.0;
  bool accept_degraded = false;
  int retries = 0;
  long mem_budget_bytes = 0;
  bool stream = true;
  bool trace = false;
  double cancel_after_ms = -1.0;
};

QueryClientArgs ParseQueryClient(int argc, char** argv) {
  QueryClientArgs args;
  auto need_value = [&](int& i) -> std::string {
    if (i + 1 >= argc) Die(std::string("missing value for ") + argv[i]);
    return argv[++i];
  };
  for (int i = 2; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--host") {
      args.host = need_value(i);
    } else if (flag == "--port") {
      args.port = std::atoi(need_value(i).c_str());
    } else if (flag == "--tenant") {
      args.tenant = need_value(i);
    } else if (flag == "--query-file") {
      args.query_file = need_value(i);
    } else if (flag == "--query-id") {
      args.query_id = std::atoi(need_value(i).c_str());
    } else if (flag == "--op") {
      args.op = need_value(i);
      Operator op;
      if (!ParseOperator(args.op, &op)) Die("unknown --op");
    } else if (flag == "--k") {
      args.k = std::atoi(need_value(i).c_str());
      if (args.k < 1) Die("--k must be >= 1");
    } else if (flag == "--metric") {
      args.metric = need_value(i);
      if (args.metric != "l2" && args.metric != "l1") Die("unknown --metric");
    } else if (flag == "--filters") {
      args.filters = need_value(i);
      FilterConfig config;
      if (!ParseFilters(args.filters, &config)) Die("unknown --filters");
    } else if (flag == "--deadline-ms") {
      args.deadline_ms = std::atof(need_value(i).c_str());
      if (args.deadline_ms <= 0) Die("--deadline-ms must be > 0");
    } else if (flag == "--accept-degraded") {
      args.accept_degraded = true;
    } else if (flag == "--retries") {
      args.retries = std::atoi(need_value(i).c_str());
      if (args.retries < 0) Die("--retries must be >= 0");
    } else if (flag == "--mem-budget") {
      args.mem_budget_bytes = ParseByteSize(need_value(i), "--mem-budget");
    } else if (flag == "--no-stream") {
      args.stream = false;
    } else if (flag == "--trace") {
      args.trace = true;
    } else if (flag == "--cancel-after-ms") {
      args.cancel_after_ms = std::atof(need_value(i).c_str());
      if (args.cancel_after_ms < 0) Die("--cancel-after-ms must be >= 0");
    } else {
      Die("unknown flag " + flag);
    }
  }
  if (args.port <= 0) Die("query needs --port");
  if (args.query_file.empty() == (args.query_id < 0)) {
    Die("query needs exactly one of --query-id / --query-file");
  }
  return args;
}

int RunQueryClient(const QueryClientArgs& args) {
  // A --query-file with N objects is a batch: every object is submitted as
  // its own query (ids 1..N) over this single connection, and the client
  // reads until all N terminal frames arrive. The server interleaves
  // candidate/result frames across the in-flight ids; each frame carries
  // its id, so consumers demultiplex on that. A single-object file (or
  // --query-id) degenerates to the classic one-query exchange.
  std::vector<UncertainObject> inline_queries;
  if (!args.query_file.empty()) {
    std::string error;
    if (!LoadText(args.query_file, &inline_queries, &error)) Die(error);
    if (inline_queries.empty()) Die("--query-file holds no query objects");
  }
  const size_t num_queries =
      inline_queries.empty() ? 1 : inline_queries.size();

  net::OsdClient client;
  std::string error;
  if (!client.Connect(args.host, args.port, args.tenant, &error)) {
    Die("connect: " + error);
  }
  for (size_t i = 0; i < num_queries; ++i) {
    net::SubmitParams params;
    params.id = static_cast<int>(i) + 1;
    params.op = args.op;
    params.k = args.k;
    params.metric = args.metric;
    params.filters = args.filters;
    params.deadline_ms = args.deadline_ms;
    params.accept_degraded = args.accept_degraded;
    params.retries = args.retries;
    params.mem_budget_bytes = args.mem_budget_bytes;
    params.stream = args.stream;
    params.trace = args.trace;
    if (!inline_queries.empty()) {
      params.query = &inline_queries[i];
    } else {
      params.object_id = args.query_id;
    }
    if (!client.Send(net::BuildSubmitMessage(params), &error)) {
      Die("submit: " + error);
    }
  }
  if (args.cancel_after_ms >= 0) {
    // Sequential on purpose: candidate frames buffer in the socket while
    // we sleep, and the client is not thread-safe.
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(args.cancel_after_ms));
    for (size_t i = 0; i < num_queries; ++i) {
      if (!client.Send(net::BuildCancelMessage(static_cast<int>(i) + 1),
                       &error)) {
        Die("cancel: " + error);
      }
    }
  }

  // Print every frame as one JSON line until each submitted id has its
  // terminal frame. The exit code is 0 iff every query ended OK/OK_DEGRADED.
  size_t terminal = 0;
  bool all_ok = true;
  while (terminal < num_queries) {
    net::JsonValue msg;
    std::string raw;
    if (!client.Read(&msg, &error, &raw)) Die("read: " + error);
    std::printf("%s\n", raw.c_str());
    const std::string type = net::MessageType(msg);
    if (type == "result") {
      ++terminal;
      const net::JsonValue* status = msg.Find("status");
      if (status == nullptr || !status->is_string() ||
          (status->AsString() != "OK" &&
           status->AsString() != "OK_DEGRADED")) {
        all_ok = false;
      }
    } else if (type == "error") {
      ++terminal;
      all_ok = false;
    }
  }
  std::fflush(stdout);
  return all_ok ? 0 : 1;
}

// --- `mutate` network-client subcommand ----------------------------------

struct MutateClientArgs {
  std::string host = "127.0.0.1";
  int port = 0;
  std::string tenant = "default";
  std::vector<net::MutateOp> ops;
};

/// Parses "x_1,..,x_d,w;x_1,..,x_d,w;..." into instance rows.
std::vector<std::vector<double>> ParseInstanceRows(const std::string& spec) {
  std::vector<std::vector<double>> rows;
  std::string rest = spec;
  while (!rest.empty()) {
    const size_t semi = rest.find(';');
    const std::string row = rest.substr(0, semi);
    rest = semi == std::string::npos ? "" : rest.substr(semi + 1);
    std::vector<double> values;
    const char* p = row.c_str();
    while (*p != '\0') {
      char* end = nullptr;
      const double v = std::strtod(p, &end);
      if (end == p) Die("bad instance row '" + row + "'");
      values.push_back(v);
      p = end;
      if (*p == ',') ++p;
      else if (*p != '\0') Die("bad instance row '" + row + "'");
    }
    if (values.size() < 2) {
      Die("instance row needs at least one coordinate and a weight: '" +
          row + "'");
    }
    rows.push_back(std::move(values));
  }
  if (rows.empty()) Die("empty instance list");
  return rows;
}

/// Parses "ID:ROWS" into one insert/update op ("ID" alone for delete).
net::MutateOp ParseMutateOp(const std::string& action,
                            const std::string& spec) {
  net::MutateOp op;
  op.action = action;
  if (action == "delete") {
    op.object_id = std::atoi(spec.c_str());
    if (op.object_id < 0) Die("--delete: bad object id '" + spec + "'");
    return op;
  }
  const size_t colon = spec.find(':');
  if (colon == std::string::npos || colon == 0) {
    Die("--" + action + " must look like ID:x,..,w;x,..,w");
  }
  op.object_id = std::atoi(spec.substr(0, colon).c_str());
  if (op.object_id < 0) Die("--" + action + ": bad object id");
  op.instances = ParseInstanceRows(spec.substr(colon + 1));
  return op;
}

MutateClientArgs ParseMutateClient(int argc, char** argv) {
  MutateClientArgs args;
  auto need_value = [&](int& i) -> std::string {
    if (i + 1 >= argc) Die(std::string("missing value for ") + argv[i]);
    return argv[++i];
  };
  for (int i = 2; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--host") {
      args.host = need_value(i);
    } else if (flag == "--port") {
      args.port = std::atoi(need_value(i).c_str());
    } else if (flag == "--tenant") {
      args.tenant = need_value(i);
    } else if (flag == "--insert") {
      args.ops.push_back(ParseMutateOp("insert", need_value(i)));
    } else if (flag == "--update") {
      args.ops.push_back(ParseMutateOp("update", need_value(i)));
    } else if (flag == "--delete") {
      args.ops.push_back(ParseMutateOp("delete", need_value(i)));
    } else {
      Die("unknown flag " + flag);
    }
  }
  if (args.port <= 0) Die("mutate needs --port");
  if (args.ops.empty()) {
    Die("mutate needs at least one --insert / --update / --delete");
  }
  return args;
}

int RunMutateClient(const MutateClientArgs& args) {
  net::OsdClient client;
  std::string error;
  if (!client.Connect(args.host, args.port, args.tenant, &error)) {
    Die("connect: " + error);
  }
  if (!client.Send(net::BuildMutateMessage(1, args.ops), &error)) {
    Die("mutate: " + error);
  }
  while (true) {
    net::JsonValue msg;
    std::string raw;
    if (!client.Read(&msg, &error, &raw)) Die("read: " + error);
    std::printf("%s\n", raw.c_str());
    const std::string type = net::MessageType(msg);
    if (type == "mutate_ok") {
      std::fflush(stdout);
      return 0;
    }
    if (type == "error") {
      std::fflush(stdout);
      return 1;
    }
  }
}

// --- `wal-dump` / `checkpoint-info` durability-inspection subcommands ----

bool IsDirectory(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0 && S_ISDIR(st.st_mode);
}

/// Scans one WAL segment and prints its records plus a summary line.
/// Returns true iff the scan verdict is kOk.
bool DumpWalSegment(const std::string& path) {
  const io::WalScanResult scan = io::ScanWal(path);
  for (const io::WalRecordInfo& rec : scan.records) {
    std::string line = "{\"type\":\"record\",\"file\":";
    net::AppendJsonString(&line, path);
    line += ",\"offset\":" + std::to_string(rec.offset);
    line += ",\"seq\":" + std::to_string(rec.seq);
    if (rec.seal) {
      line += ",\"kind\":\"seal\"}";
    } else {
      line += ",\"kind\":\"batch\",\"ops\":[";
      for (size_t i = 0; i < rec.ops.size(); ++i) {
        const Mutation& op = rec.ops[i];
        if (i > 0) line += ",";
        line += "{\"op\":\"";
        line += op.kind == Mutation::Kind::kInsert   ? "insert"
                : op.kind == Mutation::Kind::kDelete ? "delete"
                                                     : "update";
        line += "\",\"id\":" + std::to_string(op.id);
        if (op.object != nullptr) {
          line += ",\"instances\":" +
                  std::to_string(op.object->num_instances());
        }
        line += "}";
      }
      line += "]}";
    }
    std::printf("%s\n", line.c_str());
  }
  const char* status = scan.status == io::WalScanStatus::kOk ? "ok"
                       : scan.status == io::WalScanStatus::kTornTail
                           ? "torn_tail"
                           : "corrupt";
  std::string line = "{\"type\":\"segment\",\"file\":";
  net::AppendJsonString(&line, path);
  line += std::string(",\"status\":\"") + status + "\"";
  line += ",\"start_seq\":" + std::to_string(scan.start_seq);
  line += std::string(",\"sealed\":") + (scan.sealed ? "true" : "false");
  line += ",\"records\":" + std::to_string(scan.records.size());
  line += ",\"valid_bytes\":" + std::to_string(scan.valid_bytes);
  if (!scan.detail.empty()) {
    line += ",\"detail\":";
    net::AppendJsonString(&line, scan.detail);
  }
  line += "}";
  std::printf("%s\n", line.c_str());
  return scan.status == io::WalScanStatus::kOk;
}

int RunWalDump(int argc, char** argv) {
  if (argc != 3) Die("usage: osd_cli wal-dump FILE_OR_WAL_DIR");
  const std::string path = argv[2];
  std::vector<std::string> segments;
  if (IsDirectory(path)) {
    std::vector<std::string> checkpoints;
    std::string error;
    if (!io::DurableStore::ListFiles(path, &segments, &checkpoints, &error)) {
      Die(error);
    }
    if (segments.empty()) Die("no WAL segments in " + path);
  } else {
    segments.push_back(path);
  }
  bool all_ok = true;
  for (const std::string& segment : segments) {
    if (!DumpWalSegment(segment)) all_ok = false;
  }
  std::fflush(stdout);
  return all_ok ? 0 : 1;
}

/// Loads one checkpoint and prints a summary line. Returns true iff valid.
bool DumpCheckpoint(const std::string& path) {
  std::vector<UncertainObject> objects;
  uint64_t wal_seq = 0;
  std::string error;
  const bool valid = LoadCheckpoint(path, &objects, &wal_seq, &error);
  std::string line = "{\"type\":\"checkpoint\",\"file\":";
  net::AppendJsonString(&line, path);
  if (valid) {
    line += ",\"valid\":true";
    line += ",\"wal_seq\":" + std::to_string(wal_seq);
    line += ",\"objects\":" + std::to_string(objects.size()) + "}";
  } else {
    line += ",\"valid\":false,\"error\":";
    net::AppendJsonString(&line, error);
    line += "}";
  }
  std::printf("%s\n", line.c_str());
  return valid;
}

int RunCheckpointInfo(int argc, char** argv) {
  if (argc != 3) Die("usage: osd_cli checkpoint-info FILE_OR_WAL_DIR");
  const std::string path = argv[2];
  std::vector<std::string> checkpoints;
  if (IsDirectory(path)) {
    std::vector<std::string> segments;
    std::string error;
    if (!io::DurableStore::ListFiles(path, &segments, &checkpoints, &error)) {
      Die(error);
    }
    if (checkpoints.empty()) Die("no checkpoints in " + path);
  } else {
    checkpoints.push_back(path);
  }
  bool all_ok = true;
  for (const std::string& checkpoint : checkpoints) {
    if (!DumpCheckpoint(checkpoint)) all_ok = false;
  }
  std::fflush(stdout);
  return all_ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "query") == 0) {
    return RunQueryClient(ParseQueryClient(argc, argv));
  }
  if (argc > 1 && std::strcmp(argv[1], "mutate") == 0) {
    return RunMutateClient(ParseMutateClient(argc, argv));
  }
  if (argc > 1 && std::strcmp(argv[1], "wal-dump") == 0) {
    return RunWalDump(argc, argv);
  }
  if (argc > 1 && std::strcmp(argv[1], "checkpoint-info") == 0) {
    return RunCheckpointInfo(argc, argv);
  }
  const Args args = Parse(argc, argv);

  {
    std::string fp_error;
    if (!failpoint::ConfigureFromEnv(&fp_error)) Die(fp_error);
    if (!args.failpoints.empty() &&
        !failpoint::Configure(args.failpoints, &fp_error)) {
      Die(fp_error);
    }
    if (!failpoint::ArmedSites().empty() && !failpoint::Enabled()) {
      std::fprintf(stderr,
                   "osd_cli: warning: failpoints armed but this build has "
                   "no sites compiled in (rebuild with -DOSD_FAILPOINTS=ON)\n");
    }
  }

  std::vector<UncertainObject> objects;
  std::string error;
  bool ok;
  if (args.binary) {
    ok = LoadBinary(args.input, &objects, &error);
  } else if (args.weighted) {
    ok = LoadTextWeighted(args.input, &objects, &error);
  } else {
    ok = LoadText(args.input, &objects, &error);
  }
  if (!ok) Die(error);

  if (args.serve_batch) return ServeBatch(args, std::move(objects));

  UncertainObject query;
  int exclude = -1;
  if (!args.query_file.empty()) {
    std::vector<UncertainObject> qset;
    if (!LoadText(args.query_file, &qset, &error)) Die(error);
    if (qset.size() != 1) Die("--query-file must hold exactly one object");
    query = std::move(qset[0]);
  } else {
    if (args.query_id >= static_cast<int>(objects.size())) {
      Die("--query-id out of range");
    }
    query = objects[args.query_id];
    exclude = args.query_id;
  }

  const Dataset dataset(std::move(objects));
  NncOptions options;
  options.op = args.op;
  options.k = args.k;
  options.metric = args.metric;
  options.filters = args.filters;
  options.exclude_id = exclude;
  options.degraded_superset = args.accept_degraded;

  obs::Trace trace("osd_cli");
  if (args.trace) options.trace = &trace;

  QueryControl control;
  if (args.deadline_s > 0) {
    control.deadline =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(args.deadline_s));
    options.control = &control;
  }

  // A per-query memory budget wraps the whole search; without
  // --accept-degraded a breach surfaces as MemoryExceeded, which we turn
  // into a clean exit instead of an unhandled-exception abort.
  NncResult result;
  try {
    memory::QueryBudgetScope mem_scope(args.mem_budget_bytes, nullptr);
    result = NncSearch(dataset, options)
                 .Run(query, [&](int id, double t) {
                   if (args.progressive) {
                     std::printf("candidate %d at %.3f ms\n", id, t * 1e3);
                   }
                 });
  } catch (const MemoryExceeded& e) {
    Die(std::string(e.what()) +
        " (rerun with --accept-degraded for a certified superset, or raise "
        "--mem-budget)");
  }

  std::printf("operator %s, k=%d: %zu candidates of %d objects in %.2f ms\n",
              OperatorName(args.op), args.k, result.candidates.size(),
              dataset.size(), result.seconds * 1e3);
  if (result.termination != NncTermination::kComplete) {
    const char* why =
        result.termination == NncTermination::kCancelled ? "cancelled"
        : result.termination == NncTermination::kMemoryExceeded
            ? "memory budget exceeded"
            : "deadline exceeded";
    if (result.degraded) {
      std::printf("status: %s — degraded superset (%ld unrefined frontier "
                  "objects from %ld subtrees; every true candidate is "
                  "included)\n",
                  why, result.frontier_objects, result.frontier_nodes);
    } else {
      std::printf("status: %s — partial result (rerun with "
                  "--accept-degraded for a certified superset)\n",
                  why);
    }
  }
  std::printf("work: %ld dominance checks, %ld instance comparisons, "
              "%ld flow runs, %ld entries pruned\n",
              result.stats.dominance_checks,
              result.stats.InstanceComparisons(), result.stats.flow_runs,
              result.entries_pruned);
  if (args.trace) std::printf("trace: %s\n", trace.ToJson().c_str());

  if (args.rank_by.empty()) {
    std::printf("candidates:");
    for (int id : result.candidates) std::printf(" %d", id);
    std::printf("\n");
    return 0;
  }

  std::vector<std::pair<double, int>> ranked;
  for (int idx : result.candidates) {
    const UncertainObject& o = dataset.object(idx);
    double score = 0.0;
    if (args.rank_by == "mean") {
      score = ExpectedDistance(o, query, args.metric);
    } else if (args.rank_by == "max") {
      score = MaxDistance(o, query, args.metric);
    } else if (args.rank_by.rfind("quantile=", 0) == 0) {
      score = QuantileDistance(o, query, std::atof(args.rank_by.c_str() + 9),
                               args.metric);
    } else if (args.rank_by == "emd") {
      score = EmdDistance(o, query, args.metric);
    } else if (args.rank_by == "hausdorff") {
      score = HausdorffDistance(o, query, args.metric);
    } else {
      Die("unknown --rank-by function");
    }
    ranked.emplace_back(score, idx);
  }
  std::sort(ranked.begin(), ranked.end());
  std::printf("candidates by %s:\n", args.rank_by.c_str());
  for (const auto& [score, idx] : ranked) {
    std::printf("  %-8d %.4f\n", idx, score);
  }
  return 0;
}
