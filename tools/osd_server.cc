// Standalone OSD network service (see src/net/server.h).
//
// Usage:
//   osd_server --input data.txt [--weighted] [--binary]
//   osd_server --gen-data N [--gen-dim D] [--gen-instances M] [--seed S]
//
// plus, for either data source:
//   [--host H] [--port P]            loopback:auto by default; the bound
//                                    address is printed as
//                                    "listening on H:P" once ready
//   [--threads T] [--queue N]        engine sizing
//   [--mem-budget B]                 default per-query memory cap
//   [--engine-mem-budget B]          engine-wide memory cap
//   [--slow-query-ms X]              keep a slow-query log
//   [--no-shed]                      block instead of shedding on overload
//                                    (not recommended: a blocked Submit
//                                    stalls the event loop)
//   [--max-connections N]
//   [--max-output-buffer SIZE]       hard per-connection output cap; a
//                                    connection past it is evicted with a
//                                    slow_consumer error frame
//   [--high-watermark SIZE]          coalesce candidate frames above this
//   [--low-watermark SIZE]           resume streaming below this (default
//                                    high/2)
//   [--idle-timeout-s X]             evict idle connections after X s
//   [--write-stall-timeout-s X]      evict connections whose peer stops
//                                    reading for X s
//   [--watchdog-ms X]                engine watchdog: hard-fail queries
//                                    that overrun their deadline's grace
//                                    (and no-deadline queries after X ms),
//                                    poisoning + respawning stuck workers
//   [--profile-cache-bytes SIZE]     cross-query profile cache capacity
//                                    (epoch-versioned, LRU, charged to the
//                                    engine memory budget; 0/absent = off)
//   [--max-batch N]                  group up to N compatible queued
//                                    queries into one shared traversal
//                                    pass (1/absent = off)
//   [--batch-window-us X]            how long an open batch waits for more
//                                    members before dispatching (default
//                                    200). Results are bit-identical with
//                                    sharing on or off; OSD_SHARED_CACHE=0
//                                    in the environment force-disables both.
//   [--fold-interval-s X]            background fold: merge the mutation
//                                    delta into a fresh base every X s
//   [--fold-delta N]                 background fold: merge once the delta
//                                    reaches N objects (default 1024 —
//                                    tenants may write by default, so the
//                                    server always folds; 0 disables the
//                                    fold thread, leaving the store's
//                                    synchronous backstop as the only
//                                    bound on un-folded mutations)
//   [--wal-dir DIR]                  durability tier: fsync'd write-ahead
//                                    log + epoch checkpoints in DIR. On
//                                    startup the store recovers from DIR
//                                    (latest valid checkpoint + WAL
//                                    replay; torn tails truncate with a
//                                    warning, mid-log corruption refuses
//                                    startup). An initialized DIR is
//                                    authoritative: --input/--gen-data
//                                    only seed an empty one. mutate_ok
//                                    then implies durable; on WAL failure
//                                    the server degrades to read-only
//                                    (writes fail with
//                                    storage_unavailable). With --wal-dir
//                                    alone a fresh empty store is legal.
//   [--checkpoint-interval S]        with --wal-dir: fold (and therefore
//                                    checkpoint + WAL-rotate) at least
//                                    every S seconds; tightens
//                                    --fold-interval-s if both are given.
//                                    Folds triggered by --fold-delta
//                                    checkpoint too, so this mainly bounds
//                                    replay time for slow-writing stores
//   [--tenant NAME:mem=SIZE,inflight=N,retries=R,writes=0|1,mutops=N]
//                                    per-tenant policy, repeatable; the
//                                    name "default" sets the policy for
//                                    tenants without an explicit entry
//                                    (writes gates "mutate" frames, mutops
//                                    caps ops per mutate batch)
//   [--metrics-out FILE]             write Prometheus metrics on exit
//   [--failpoints SPEC]              arm fault-injection sites
//
// SIGTERM / SIGINT initiate a graceful drain: the listener closes, new
// submits are refused, in-flight queries finish and their terminal frames
// flush, and the process exits 0 with a summary on stderr.

#include <signal.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "common/failpoint.h"
#include "datagen/generators.h"
#include "engine/query_engine.h"
#include "io/dataset_io.h"
#include "io/durable_store.h"
#include "net/server.h"

namespace {

using namespace osd;

struct Args {
  std::string input;
  bool weighted = false;
  bool binary = false;
  int gen_data = 0;
  int gen_dim = 2;
  int gen_instances = 8;
  uint64_t seed = 42;
  std::string host = "127.0.0.1";
  int port = 0;
  int threads = 0;
  size_t queue = 4096;
  long mem_budget_bytes = 0;
  long engine_mem_budget_bytes = 0;
  double slow_query_ms = 0.0;
  bool shed = true;
  size_t max_connections = 256;
  long max_output_buffer_bytes = 0;  // 0 = server default
  long high_watermark_bytes = 0;
  long low_watermark_bytes = 0;
  double idle_timeout_s = 0.0;
  double write_stall_timeout_s = 0.0;
  double watchdog_ms = 0.0;
  long profile_cache_bytes = 0;
  int max_batch = 1;
  double batch_window_us = 200.0;
  double fold_interval_s = 0.0;
  int fold_delta = 1024;  // default ON: any tenant may write by default
  std::string wal_dir;
  double checkpoint_interval_s = 0.0;
  net::TenantPolicy default_policy;
  std::map<std::string, net::TenantPolicy> tenants;
  std::string metrics_out;
  std::string failpoints;
};

[[noreturn]] void Die(const std::string& message) {
  std::fprintf(stderr, "osd_server: %s\n", message.c_str());
  std::exit(2);
}

long ParseByteSize(const std::string& s, const char* what) {
  char* end = nullptr;
  const double value = std::strtod(s.c_str(), &end);
  long multiplier = 1;
  if (end != nullptr && *end != '\0') {
    switch (*end) {
      case 'k': case 'K': multiplier = 1L << 10; break;
      case 'm': case 'M': multiplier = 1L << 20; break;
      case 'g': case 'G': multiplier = 1L << 30; break;
      default: Die(std::string(what) + ": bad byte size '" + s + "'");
    }
    if (*(end + 1) != '\0') {
      Die(std::string(what) + ": bad byte size '" + s + "'");
    }
  }
  const double bytes = value * static_cast<double>(multiplier);
  if (!(bytes >= 1) || bytes > 9e18) {
    Die(std::string(what) + " must be a positive byte count");
  }
  return static_cast<long>(bytes);
}

/// Parses "NAME:mem=64m,inflight=4,retries=1" (every key optional).
void ParseTenantFlag(const std::string& spec, Args* args) {
  const size_t colon = spec.find(':');
  if (colon == std::string::npos || colon == 0) {
    Die("--tenant must look like NAME:mem=SIZE,inflight=N,retries=R");
  }
  const std::string name = spec.substr(0, colon);
  if (name != "default" && !net::ValidTenantName(name)) {
    Die("--tenant: invalid tenant name '" + name + "'");
  }
  net::TenantPolicy policy;
  std::string rest = spec.substr(colon + 1);
  while (!rest.empty()) {
    const size_t comma = rest.find(',');
    const std::string item = rest.substr(0, comma);
    rest = comma == std::string::npos ? "" : rest.substr(comma + 1);
    const size_t eq = item.find('=');
    if (eq == std::string::npos) Die("--tenant: bad item '" + item + "'");
    const std::string key = item.substr(0, eq);
    const std::string value = item.substr(eq + 1);
    if (key == "mem") {
      policy.per_query_mem_bytes = ParseByteSize(value, "--tenant mem");
    } else if (key == "inflight") {
      policy.max_inflight = std::atoi(value.c_str());
      if (policy.max_inflight < 1) Die("--tenant: inflight must be >= 1");
    } else if (key == "retries") {
      policy.retries = std::atoi(value.c_str());
      if (policy.retries < 0) Die("--tenant: retries must be >= 0");
    } else if (key == "writes") {
      if (value != "0" && value != "1") {
        Die("--tenant: writes must be 0 or 1");
      }
      policy.allow_writes = value == "1";
    } else if (key == "mutops") {
      policy.max_mutation_ops = std::atoi(value.c_str());
      if (policy.max_mutation_ops < 1) Die("--tenant: mutops must be >= 1");
    } else {
      Die("--tenant: unknown key '" + key + "'");
    }
  }
  if (name == "default") {
    args->default_policy = policy;
  } else {
    args->tenants[name] = policy;
  }
}

Args Parse(int argc, char** argv) {
  Args args;
  auto need_value = [&](int& i) -> std::string {
    if (i + 1 >= argc) Die(std::string("missing value for ") + argv[i]);
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--input") {
      args.input = need_value(i);
    } else if (flag == "--weighted") {
      args.weighted = true;
    } else if (flag == "--binary") {
      args.binary = true;
    } else if (flag == "--gen-data") {
      args.gen_data = std::atoi(need_value(i).c_str());
      if (args.gen_data < 1) Die("--gen-data must be >= 1");
    } else if (flag == "--gen-dim") {
      args.gen_dim = std::atoi(need_value(i).c_str());
      if (args.gen_dim < 1) Die("--gen-dim must be >= 1");
    } else if (flag == "--gen-instances") {
      args.gen_instances = std::atoi(need_value(i).c_str());
      if (args.gen_instances < 1) Die("--gen-instances must be >= 1");
    } else if (flag == "--seed") {
      args.seed = std::strtoull(need_value(i).c_str(), nullptr, 10);
    } else if (flag == "--host") {
      args.host = need_value(i);
    } else if (flag == "--port") {
      args.port = std::atoi(need_value(i).c_str());
      if (args.port < 0 || args.port > 65535) Die("--port out of range");
    } else if (flag == "--threads") {
      args.threads = std::atoi(need_value(i).c_str());
    } else if (flag == "--queue") {
      const int q = std::atoi(need_value(i).c_str());
      if (q < 1) Die("--queue must be >= 1");
      args.queue = static_cast<size_t>(q);
    } else if (flag == "--mem-budget") {
      args.mem_budget_bytes = ParseByteSize(need_value(i), "--mem-budget");
    } else if (flag == "--engine-mem-budget") {
      args.engine_mem_budget_bytes =
          ParseByteSize(need_value(i), "--engine-mem-budget");
    } else if (flag == "--slow-query-ms") {
      args.slow_query_ms = std::atof(need_value(i).c_str());
      if (args.slow_query_ms <= 0) Die("--slow-query-ms must be > 0");
    } else if (flag == "--no-shed") {
      args.shed = false;
    } else if (flag == "--max-connections") {
      const int n = std::atoi(need_value(i).c_str());
      if (n < 1) Die("--max-connections must be >= 1");
      args.max_connections = static_cast<size_t>(n);
    } else if (flag == "--max-output-buffer") {
      args.max_output_buffer_bytes =
          ParseByteSize(need_value(i), "--max-output-buffer");
    } else if (flag == "--high-watermark") {
      args.high_watermark_bytes =
          ParseByteSize(need_value(i), "--high-watermark");
    } else if (flag == "--low-watermark") {
      args.low_watermark_bytes =
          ParseByteSize(need_value(i), "--low-watermark");
    } else if (flag == "--idle-timeout-s") {
      args.idle_timeout_s = std::atof(need_value(i).c_str());
      if (args.idle_timeout_s <= 0) Die("--idle-timeout-s must be > 0");
    } else if (flag == "--write-stall-timeout-s") {
      args.write_stall_timeout_s = std::atof(need_value(i).c_str());
      if (args.write_stall_timeout_s <= 0) {
        Die("--write-stall-timeout-s must be > 0");
      }
    } else if (flag == "--watchdog-ms") {
      args.watchdog_ms = std::atof(need_value(i).c_str());
      if (args.watchdog_ms <= 0) Die("--watchdog-ms must be > 0");
    } else if (flag == "--profile-cache-bytes") {
      args.profile_cache_bytes =
          ParseByteSize(need_value(i), "--profile-cache-bytes");
    } else if (flag == "--max-batch") {
      args.max_batch = std::atoi(need_value(i).c_str());
      if (args.max_batch < 1) Die("--max-batch must be >= 1");
    } else if (flag == "--batch-window-us") {
      args.batch_window_us = std::atof(need_value(i).c_str());
      if (args.batch_window_us <= 0) Die("--batch-window-us must be > 0");
    } else if (flag == "--fold-interval-s") {
      args.fold_interval_s = std::atof(need_value(i).c_str());
      if (args.fold_interval_s <= 0) Die("--fold-interval-s must be > 0");
    } else if (flag == "--fold-delta") {
      args.fold_delta = std::atoi(need_value(i).c_str());
      if (args.fold_delta < 0) Die("--fold-delta must be >= 0 (0 disables)");
    } else if (flag == "--wal-dir") {
      args.wal_dir = need_value(i);
      if (args.wal_dir.empty()) Die("--wal-dir needs a directory path");
    } else if (flag == "--checkpoint-interval") {
      args.checkpoint_interval_s = std::atof(need_value(i).c_str());
      if (args.checkpoint_interval_s <= 0) {
        Die("--checkpoint-interval must be > 0 seconds");
      }
    } else if (flag == "--tenant") {
      ParseTenantFlag(need_value(i), &args);
    } else if (flag == "--metrics-out") {
      args.metrics_out = need_value(i);
    } else if (flag == "--failpoints") {
      args.failpoints = need_value(i);
    } else {
      Die("unknown flag " + flag);
    }
  }
  if (!args.input.empty() && args.gen_data > 0) {
    Die("at most one of --input / --gen-data may be given");
  }
  if (args.input.empty() && args.gen_data == 0 && args.wal_dir.empty()) {
    Die("one of --input / --gen-data / --wal-dir is required");
  }
  if (args.checkpoint_interval_s > 0 && args.wal_dir.empty()) {
    Die("--checkpoint-interval requires --wal-dir");
  }
  return args;
}

net::OsdServer* g_server = nullptr;

extern "C" void HandleSignal(int) {
  // RequestDrain is async-signal-safe by contract.
  if (g_server != nullptr) g_server->RequestDrain();
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = Parse(argc, argv);

  {
    std::string fp_error;
    if (!failpoint::ConfigureFromEnv(&fp_error)) Die(fp_error);
    if (!args.failpoints.empty() &&
        !failpoint::Configure(args.failpoints, &fp_error)) {
      Die(fp_error);
    }
    if (!failpoint::ArmedSites().empty() && !failpoint::Enabled()) {
      std::fprintf(stderr,
                   "osd_server: warning: failpoints armed but this build has "
                   "no sites compiled in (rebuild with -DOSD_FAILPOINTS=ON)\n");
    }
  }

  // Recover the durable state first: an initialized WAL directory is the
  // authoritative data source, and --input/--gen-data only seed a fresh
  // (empty) one.
  io::DurableStore::RecoverResult rec;
  if (!args.wal_dir.empty()) {
    std::string rerr;
    if (!io::DurableStore::Recover(args.wal_dir, &rec, &rerr)) {
      Die("refusing to start: " + rerr +
          " (acknowledged writes cannot be reconstructed; repair the WAL "
          "directory or move it aside to start fresh)");
    }
    for (const std::string& warning : rec.warnings) {
      std::fprintf(stderr, "osd_server: recovery warning: %s\n",
                   warning.c_str());
    }
  }

  std::vector<UncertainObject> objects;
  if (rec.initialized) {
    if (!args.input.empty() || args.gen_data > 0) {
      std::fprintf(stderr,
                   "osd_server: warning: %s is initialized and "
                   "authoritative; ignoring --input/--gen-data\n",
                   args.wal_dir.c_str());
    }
    objects = std::move(rec.objects);
    std::fprintf(
        stderr,
        "osd_server: recovered %zu object(s) at seq %llu from %s "
        "(checkpoint seq %llu, %llu batch(es) replayed, %s shutdown)\n",
        objects.size(), static_cast<unsigned long long>(rec.last_seq),
        args.wal_dir.c_str(),
        static_cast<unsigned long long>(rec.checkpoint_seq),
        static_cast<unsigned long long>(rec.replayed_batches),
        rec.sealed ? "clean" : "unclean");
  } else if (!args.input.empty()) {
    std::string error;
    bool ok;
    if (args.binary) {
      ok = LoadBinary(args.input, &objects, &error);
    } else if (args.weighted) {
      ok = LoadTextWeighted(args.input, &objects, &error);
    } else {
      ok = LoadText(args.input, &objects, &error);
    }
    if (!ok) Die(error);
  } else if (args.gen_data > 0) {
    SyntheticParams params;
    params.num_objects = args.gen_data;
    params.dim = args.gen_dim;
    params.instances_per_object = args.gen_instances;
    params.seed = args.seed;
    objects = GenerateSyntheticObjects(params);
  }
  // A durable store may legitimately be empty (fresh, or drained by
  // deletes); without durability an empty dataset serves nothing useful.
  if (objects.empty() && args.wal_dir.empty()) {
    Die("dataset holds no objects");
  }

  EngineOptions engine_options{.num_threads = args.threads,
                               .queue_capacity = args.queue,
                               .shed_on_overload = args.shed,
                               .slow_query_threshold_ms = args.slow_query_ms,
                               .per_query_mem_bytes = args.mem_budget_bytes,
                               .engine_mem_bytes =
                                   args.engine_mem_budget_bytes};
  if (args.watchdog_ms > 0) {
    engine_options.watchdog = true;
    engine_options.watchdog_no_deadline_ms = args.watchdog_ms;
  }
  engine_options.profile_cache_bytes = args.profile_cache_bytes;
  engine_options.max_batch = args.max_batch;
  engine_options.batch_window_us = args.batch_window_us;
  engine_options.fold_interval_s = args.fold_interval_s;
  // Checkpoints ride folds, so the checkpoint interval is a fold interval
  // that may only tighten an explicitly configured one.
  if (args.checkpoint_interval_s > 0 &&
      (engine_options.fold_interval_s <= 0 ||
       engine_options.fold_interval_s > args.checkpoint_interval_s)) {
    engine_options.fold_interval_s = args.checkpoint_interval_s;
  }
  engine_options.fold_delta_threshold = args.fold_delta;
  QueryEngine engine(Dataset(std::move(objects)), engine_options);

  io::DurableStore store;
  const bool durable = !args.wal_dir.empty();
  if (durable) {
    std::string serr;
    if (!store.Open(args.wal_dir, rec.last_seq, &serr)) Die(serr);
    engine.versioned().AttachDurability(&store, rec.last_seq);
    // Startup checkpoint: makes --input/--gen-data seeds durable on first
    // boot and bounds the replay chain after every recovery.
    store.Checkpoint(engine.versioned().Acquire(), rec.last_seq);
  }

  net::ServerOptions options;
  options.host = args.host;
  options.port = args.port;
  options.max_connections = args.max_connections;
  if (args.max_output_buffer_bytes > 0) {
    options.max_output_buffer_bytes =
        static_cast<size_t>(args.max_output_buffer_bytes);
  }
  if (args.high_watermark_bytes > 0) {
    options.output_high_watermark_bytes =
        static_cast<size_t>(args.high_watermark_bytes);
    options.output_low_watermark_bytes =
        args.low_watermark_bytes > 0
            ? static_cast<size_t>(args.low_watermark_bytes)
            : 0;
  }
  options.idle_timeout_s = args.idle_timeout_s;
  options.write_stall_timeout_s = args.write_stall_timeout_s;
  options.default_policy = args.default_policy;
  options.tenants = args.tenants;
  if (durable) options.durable = &store;

  net::OsdServer server(&engine, options);
  std::string error;
  if (!server.Start(&error)) Die(error);
  g_server = &server;

  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_handler = HandleSignal;
  sigaction(SIGTERM, &sa, nullptr);
  sigaction(SIGINT, &sa, nullptr);

  std::fprintf(stderr,
               "osd_server: %d objects, dim %d, %d worker thread(s)\n",
               engine.dataset().size(), engine.dataset().dim(),
               engine.num_threads());
  // The machine-readable ready line; the smoke harness parses it.
  std::printf("listening on %s:%d\n", args.host.c_str(), server.port());
  std::fflush(stdout);

  server.Wait();
  g_server = nullptr;

  if (durable) {
    // The loop exit already drained the engine (fold thread stopped, no
    // query in flight), so no Append can race the seal.
    engine.versioned().DetachDurability();
    const uint64_t final_seq = engine.versioned().last_seq();
    std::string serr;
    if (store.Seal(final_seq, &serr)) {
      std::fprintf(stderr, "osd_server: WAL sealed at seq %llu\n",
                   static_cast<unsigned long long>(final_seq));
    } else {
      std::fprintf(stderr,
                   "osd_server: warning: could not seal WAL (next start "
                   "will report an unclean shutdown): %s\n",
                   serr.c_str());
    }
  }

  std::fprintf(stderr,
               "osd_server: drained; %ld submitted, %ld completed, "
               "%ld in flight, %ld connection(s) served\n",
               server.queries_submitted(), server.queries_completed(),
               server.inflight(), server.connections_accepted());
  if (!args.metrics_out.empty()) {
    const std::string text = server.MetricsText();
    std::FILE* f = std::fopen(args.metrics_out.c_str(), "w");
    if (f == nullptr) Die("cannot open --metrics-out " + args.metrics_out);
    std::fwrite(text.data(), 1, text.size(), f);
    std::fclose(f);
  }
  if (args.slow_query_ms > 0) {
    std::fprintf(stderr, "%s\n", engine.SlowQueryDump().c_str());
  }
  return server.inflight() == 0 ? 0 : 1;
}
